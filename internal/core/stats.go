package core

import "sort"

// StreamStats aggregates traffic on one logical stream across a run.
type StreamStats struct {
	Buffers int64 // buffers transferred
	Bytes   int64 // payload bytes transferred
	Acks    int64 // acknowledgment messages sent (DD only)
	// PerTargetHost counts buffers delivered to each consumer copy set,
	// keyed by host name (the paper's Table 3 measurement).
	PerTargetHost map[string]int64
}

// FilterStats aggregates execution of one filter's copies across a run.
type FilterStats struct {
	Copies int
	// BusySeconds is per-copy time spent inside Process excluding time
	// blocked reading from or writing to streams (compute time).
	BusySeconds []float64
	// WallSeconds is per-copy total time inside Process.
	WallSeconds []float64
	// ReadBlockedSeconds / WriteBlockedSeconds are per-copy stream stall
	// times.
	ReadBlockedSeconds  []float64
	WriteBlockedSeconds []float64
	BuffersIn           int64
	BuffersOut          int64
}

// MinAvgMax summarizes a per-copy series.
func MinAvgMax(xs []float64) (min, avg, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return min, sum / float64(len(xs)), max
}

// Stats is the result of a run.
type Stats struct {
	Streams map[string]*StreamStats
	Filters map[string]*FilterStats
	// WallSeconds is total run time; PerUOWSeconds is per unit of work.
	// On the real engine these are wall-clock; on the simulated engine
	// they are virtual time.
	WallSeconds   float64
	PerUOWSeconds []float64
}

// StreamNames returns the stream names present in the stats, sorted.
func (s *Stats) StreamNames() []string {
	names := make([]string, 0, len(s.Streams))
	for n := range s.Streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewStats allocates an empty Stats for a graph. Engines (this package's
// Runner and internal/simrt) use it to report results in one shape.
func NewStats(g *Graph) *Stats { return newStats(g) }

func newStats(g *Graph) *Stats {
	st := &Stats{Streams: make(map[string]*StreamStats), Filters: make(map[string]*FilterStats)}
	for _, sp := range g.Streams() {
		st.Streams[sp.Name] = &StreamStats{PerTargetHost: make(map[string]int64)}
	}
	for _, f := range g.Filters() {
		st.Filters[f] = &FilterStats{}
	}
	return st
}
