package core

import (
	"fmt"
	"sort"
)

// FilterFactory creates one filter instance per transparent copy.
type FilterFactory func() Filter

// StreamSpec is a logical unidirectional stream between two filters. The
// runtime maintains the illusion of a single point-to-point pipe even when
// either endpoint is transparently copied.
type StreamSpec struct {
	Name string // unique stream name, used by Ctx.Read/Write
	From string // producer filter name
	To   string // consumer filter name
}

// Graph is the application processing structure: named filters connected by
// streams. Graphs must be acyclic.
type Graph struct {
	filters     map[string]FilterFactory
	filterOrder []string
	streams     []StreamSpec
	byName      map[string]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{filters: make(map[string]FilterFactory), byName: make(map[string]int)}
}

// AddFilter registers a filter under a unique name.
func (g *Graph) AddFilter(name string, f FilterFactory) *Graph {
	if name == "" {
		panic("core: empty filter name")
	}
	if _, dup := g.filters[name]; dup {
		panic("core: duplicate filter " + name)
	}
	if f == nil {
		panic("core: nil factory for filter " + name)
	}
	g.filters[name] = f
	g.filterOrder = append(g.filterOrder, name)
	return g
}

// Connect adds a stream named streamName from filter `from` to filter `to`.
func (g *Graph) Connect(from, to, streamName string) *Graph {
	if _, ok := g.byName[streamName]; ok {
		panic("core: duplicate stream " + streamName)
	}
	g.byName[streamName] = len(g.streams)
	g.streams = append(g.streams, StreamSpec{Name: streamName, From: from, To: to})
	return g
}

// Filters returns the filter names in registration order.
func (g *Graph) Filters() []string {
	out := make([]string, len(g.filterOrder))
	copy(out, g.filterOrder)
	return out
}

// Streams returns the stream specs in registration order.
func (g *Graph) Streams() []StreamSpec {
	out := make([]StreamSpec, len(g.streams))
	copy(out, g.streams)
	return out
}

// Factory returns the factory for a filter name.
func (g *Graph) Factory(name string) FilterFactory { return g.filters[name] }

// Inputs returns the streams consumed by the named filter.
func (g *Graph) Inputs(name string) []StreamSpec {
	var in []StreamSpec
	for _, s := range g.streams {
		if s.To == name {
			in = append(in, s)
		}
	}
	return in
}

// Outputs returns the streams produced by the named filter.
func (g *Graph) Outputs(name string) []StreamSpec {
	var out []StreamSpec
	for _, s := range g.streams {
		if s.From == name {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks that every stream endpoint exists and the graph is
// acyclic.
func (g *Graph) Validate() error {
	if len(g.filters) == 0 {
		return fmt.Errorf("core: graph has no filters")
	}
	indeg := make(map[string]int, len(g.filters))
	adj := make(map[string][]string)
	for name := range g.filters {
		indeg[name] = 0
	}
	for _, s := range g.streams {
		if _, ok := g.filters[s.From]; !ok {
			return fmt.Errorf("core: stream %s: unknown producer %q", s.Name, s.From)
		}
		if _, ok := g.filters[s.To]; !ok {
			return fmt.Errorf("core: stream %s: unknown consumer %q", s.Name, s.To)
		}
		if s.From == s.To {
			return fmt.Errorf("core: stream %s: self-loop on %q", s.Name, s.From)
		}
		adj[s.From] = append(adj[s.From], s.To)
		indeg[s.To]++
	}
	// Kahn's algorithm for cycle detection.
	var queue []string
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue)
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if seen != len(g.filters) {
		return fmt.Errorf("core: graph contains a cycle")
	}
	return nil
}

// PlaceEntry assigns a number of transparent copies of a filter to a host.
type PlaceEntry struct {
	Host   string
	Copies int
}

// Placement maps each filter to one or more (host, copies) assignments. The
// application developer decides decomposition, placement, and copy counts
// (paper §2); the runtime does the rest.
type Placement struct {
	entries map[string][]PlaceEntry
	order   map[string][]string // preserve host order per filter
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{entries: make(map[string][]PlaceEntry), order: make(map[string][]string)}
}

// Place assigns `copies` transparent copies of filter on host, accumulating
// if called repeatedly for the same (filter, host).
func (p *Placement) Place(filter, host string, copies int) *Placement {
	if copies <= 0 {
		panic("core: Place needs copies >= 1")
	}
	for i, e := range p.entries[filter] {
		if e.Host == host {
			p.entries[filter][i].Copies += copies
			return p
		}
	}
	p.entries[filter] = append(p.entries[filter], PlaceEntry{Host: host, Copies: copies})
	p.order[filter] = append(p.order[filter], host)
	return p
}

// Of returns the placement entries for a filter, in the order hosts were
// first assigned.
func (p *Placement) Of(filter string) []PlaceEntry {
	out := make([]PlaceEntry, len(p.entries[filter]))
	copy(out, p.entries[filter])
	return out
}

// TotalCopies returns the number of copies of a filter across all hosts.
func (p *Placement) TotalCopies(filter string) int {
	n := 0
	for _, e := range p.entries[filter] {
		n += e.Copies
	}
	return n
}

// Hosts returns every distinct host referenced by the placement, sorted.
func (p *Placement) Hosts() []string {
	set := make(map[string]struct{})
	for _, es := range p.entries {
		for _, e := range es {
			set[e.Host] = struct{}{}
		}
	}
	hosts := make([]string, 0, len(set))
	for h := range set {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Validate checks that every filter in the graph is placed somewhere.
func (p *Placement) Validate(g *Graph) error {
	for _, name := range g.Filters() {
		if len(p.entries[name]) == 0 {
			return fmt.Errorf("core: filter %q has no placement", name)
		}
	}
	return nil
}
