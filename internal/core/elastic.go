package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"datacutter/internal/elastic"
)

// Elasticity on the real engine. Copy-set membership changes happen at
// work-cycle boundaries (rescale): transparent copies rebuild per-UOW state
// in Init, so spawning and retiring instances between units of work needs
// no state hand-off. Mid-cycle, the autoscale controller (elasticLoop) only
// mutates what is safe while buffers are in flight: WRR weights and DD
// windows through the StreamWriter mutation API, plus opportunistic work
// stealing between co-hosted copy sets (readStealing).

// snapshotEntries captures the current placement as engine-neutral entries,
// in graph filter order then placement host order — the deterministic base
// the scale schedule mutates.
func (r *Runner) snapshotEntries() []elastic.Entry {
	var out []elastic.Entry
	for _, name := range r.g.Filters() {
		for _, e := range r.pl.Of(name) {
			out = append(out, elastic.Entry{Filter: name, Host: e.Host, Copies: e.Copies})
		}
	}
	return out
}

// validateSchedule rejects scale steps naming filters absent from the
// graph; a typo would otherwise silently grow a copy set nobody consumes.
func (r *Runner) validateSchedule() error {
	known := make(map[string]bool)
	for _, name := range r.g.Filters() {
		known[name] = true
	}
	for _, s := range r.opts.ScaleSchedule {
		if !known[s.Filter] {
			return fmt.Errorf("core: scale schedule names unknown filter %q", s.Filter)
		}
		if s.BeforeUOW < 1 {
			return fmt.Errorf("core: scale step for %q has BeforeUOW %d (the initial plan is the zero boundary; steps need >= 1)", s.Filter, s.BeforeUOW)
		}
	}
	return nil
}

// pendingScale is one controller-proposed copy-count change waiting for the
// next work-cycle boundary.
type pendingScale struct {
	step   elastic.ScaleStep
	reason string
}

// queuePending records controller decisions for the next boundary. Multiple
// decisions for one (filter, host) keep the latest.
func (r *Runner) queuePending(decisions []elastic.Decision) {
	if len(decisions) == 0 {
		return
	}
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	for _, d := range decisions {
		r.pending = append(r.pending, pendingScale{
			step:   elastic.ScaleStep{Filter: d.Filter, Host: d.Host, Copies: d.Copies},
			reason: d.Reason,
		})
	}
}

// drainPending returns the queued controller steps stamped for boundary
// uow, plus per-(filter,host) reasons for the trace events.
func (r *Runner) drainPending(uow int) ([]elastic.ScaleStep, map[scaleKey]string) {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	if len(r.pending) == 0 {
		return nil, nil
	}
	steps := make([]elastic.ScaleStep, len(r.pending))
	reasons := make(map[scaleKey]string, len(r.pending))
	for i, p := range r.pending {
		p.step.BeforeUOW = uow
		steps[i] = p.step
		reasons[scaleKey{p.step.Filter, p.step.Host}] = p.reason
	}
	r.pending = nil
	return steps, reasons
}

type scaleKey struct{ filter, host string }

// rescale applies a new effective placement between units of work: for each
// filter, surviving (filter, host) slots keep their existing instances (the
// work-cycle model persists instances across UOWs), grown slots spawn fresh
// instances from the factory, and shrunk slots retire instances from the
// end. Global copy indices and totals are reassigned in placement order;
// filters untouched by the change keep their instances and indices exactly.
// Per-copy stats slices grow and never shrink, so retired copies keep their
// accumulated time.
func (r *Runner) rescale(entries []elastic.Entry, uow int, reasons map[scaleKey]string) {
	newPl := NewPlacement()
	for _, e := range entries {
		newPl.Place(e.Filter, e.Host, e.Copies)
	}
	for _, name := range r.g.Filters() {
		oldByHost := make(map[string][]*copyInst)
		oldCount := make(map[string]int)
		for _, ci := range r.copies[name] {
			oldByHost[ci.host] = append(oldByHost[ci.host], ci)
			oldCount[ci.host]++
		}
		total := newPl.TotalCopies(name)
		var next []*copyInst
		idx := 0
		for _, e := range newPl.Of(name) {
			pool := oldByHost[e.Host]
			for c := 0; c < e.Copies; c++ {
				var ci *copyInst
				if len(pool) > 0 {
					ci, pool = pool[0], pool[1:]
				} else {
					filt := r.g.Factory(name)()
					attachObserver(filt, r.opts.Obs)
					ci = &copyInst{filter: filt, name: name, host: e.Host}
				}
				ci.globalIdx = idx
				ci.total = total
				next = append(next, ci)
				idx++
			}
			oldByHost[e.Host] = pool
			if old := oldCount[e.Host]; old != e.Copies {
				elastic.RecordScale(r.opts.Obs, name, e.Host, old, e.Copies, uow, r.scaleReason(reasons, name, e.Host))
			}
			delete(oldCount, e.Host)
		}
		// Hosts whose entry was retired entirely.
		for host, old := range oldCount {
			elastic.RecordScale(r.opts.Obs, name, host, old, 0, uow, r.scaleReason(reasons, name, host))
		}
		r.copies[name] = next
		fs := r.stats.Filters[name]
		fs.Copies = total
		for len(fs.BusySeconds) < total {
			fs.BusySeconds = append(fs.BusySeconds, 0)
			fs.WallSeconds = append(fs.WallSeconds, 0)
			fs.ReadBlockedSeconds = append(fs.ReadBlockedSeconds, 0)
			fs.WriteBlockedSeconds = append(fs.WriteBlockedSeconds, 0)
		}
	}
	r.pl = newPl
}

func (r *Runner) scaleReason(reasons map[scaleKey]string, filter, host string) string {
	if s, ok := reasons[scaleKey{filter, host}]; ok && s != "" {
		return s
	}
	return "scale schedule"
}

// elasticLoop is the per-UOW autoscale controller: every Interval it (a)
// reweights WRR streams from observed per-target throughput, and (b) turns
// queue-depth / DD-window / p95-service signals into copy-count decisions
// queued for the next work-cycle boundary. It owns no engine state — all
// mutation goes through the StreamWriter API or the pending queue.
func (r *Runner) elasticLoop(streams map[string]*streamRT, uow int, stop chan struct{}) {
	cfg := r.opts.Elastic.WithDefaults()
	qcap := r.opts.queueCap()
	total := 0
	for _, cs := range r.copies {
		total += len(cs)
	}
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()

	// Stream names in sorted order for deterministic sampling.
	names := make([]string, 0, len(streams))
	for name := range streams {
		names = append(names, name)
	}
	sort.Strings(names)

	prevCounts := make(map[string][]int64)
	prevWeights := make(map[string]map[string]int)
	lowStreak := make(map[scaleKey]int)
	pendCopies := make(map[scaleKey]int)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}

		bySet := make(map[scaleKey]*elastic.Signals)
		var order []scaleKey
		for _, name := range names {
			st := streams[name]
			pol := r.opts.policyFor(name)

			// (a) WRR reweight from observed throughput since last tick.
			if pol.Name() == "WRR" && len(st.hosts) > 1 {
				cur := make([]int64, len(st.hosts))
				tp := make(map[string]float64, len(st.hosts))
				prev := prevCounts[name]
				for i, h := range st.hosts {
					cur[i] = st.counts.Get(i)
					d := cur[i]
					if i < len(prev) {
						d -= prev[i]
					}
					tp[h] += float64(d)
				}
				prevCounts[name] = cur
				weights := elastic.ReweightByThroughput(tp, cfg.MaxCopies)
				if !sameWeights(weights, prevWeights[name]) && anyPositive(tp) {
					for _, sw := range st.writers {
						for h, w := range weights {
							sw.Reweight(h, w)
						}
					}
					prevWeights[name] = weights
					elastic.RecordRebalance(r.opts.Obs, name, "", uow, weightNote(weights))
				}
			}

			// (b) Load signals per consumer copy set. A consumer filter can
			// have several input streams; merge to the worst occupancy.
			windows := windowFractions(st, qcap)
			p95 := 0.0
			if reg := r.opts.Obs.Registry(); reg != nil {
				p95 = reg.Histogram("core.filter." + st.spec.To + ".service_seconds").Quantile(0.95)
			}
			for i, h := range st.hosts {
				key := scaleKey{st.spec.To, h}
				sig := bySet[key]
				if sig == nil {
					sig = &elastic.Signals{Filter: st.spec.To, Host: h, Copies: st.copies[i], QueueCap: qcap}
					bySet[key] = sig
					order = append(order, key)
				}
				if q := len(st.chans[i]); q > sig.QueueLen {
					sig.QueueLen = q
				}
				if windows[i] > sig.WindowFrac {
					sig.WindowFrac = windows[i]
				}
				if p95 > sig.P95Service {
					sig.P95Service = p95
				}
			}
		}
		// Scale-down hysteresis input: consecutive low-occupancy ticks per
		// set (see elastic.Config.DownAfter).
		for _, key := range order {
			if bySet[key].Occupancy() <= cfg.LowWater {
				lowStreak[key]++
			} else {
				lowStreak[key] = 0
			}
			bySet[key].LowStreak = lowStreak[key]
		}
		// One decision per copy set per work cycle: a set with a pending
		// change is excluded from further sampling until the boundary applies
		// it. Its observed copy count cannot change mid-cycle, so re-deciding
		// would double-count the same step against the budget — the bug class
		// where the controller overshoots its bound by one per extra tick.
		sets := make([]elastic.Signals, 0, len(order))
		for _, key := range order {
			if _, ok := pendCopies[key]; !ok {
				sets = append(sets, *bySet[key])
			}
		}
		decisions := elastic.Decide(cfg, sets, total)
		for _, d := range decisions {
			key := scaleKey{d.Filter, d.Host}
			total += d.Copies - bySet[key].Copies
			pendCopies[key] = d.Copies
		}
		r.queuePending(decisions)
	}
}

// windowFractions samples DD ack-window occupancy per target across the
// stream's producer writers: the max unacked fraction of the effective
// window (queue capacity plus copy count — the in-flight bound per target).
func windowFractions(st *streamRT, qcap int) []float64 {
	out := make([]float64, len(st.hosts))
	for _, sw := range st.writers {
		if !sw.WantsAcks() {
			return out
		}
		una := sw.Unacked()
		for i := range st.hosts {
			if i >= len(una) {
				break
			}
			bound := qcap + st.copies[i]
			if bound <= 0 {
				continue
			}
			if f := float64(una[i]) / float64(bound); f > out[i] {
				out[i] = f
			}
		}
	}
	return out
}

func sameWeights(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func anyPositive(tp map[string]float64) bool {
	for _, v := range tp {
		if v > 0 {
			return true
		}
	}
	return false
}

func weightNote(w map[string]int) string {
	hosts := make([]string, 0, len(w))
	for h := range w {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	parts := make([]string, len(hosts))
	for i, h := range hosts {
		parts[i] = fmt.Sprintf("%s=%d", h, w[h])
	}
	return strings.Join(parts, " ")
}

// readStealing is Read with work stealing: the copy drains its own queue
// first, then opportunistically steals from sibling copy sets' queues on
// the same stream. Deliveries carry their producer-side ack path and target
// index, so a stolen buffer acknowledges the correct window. All of a
// stream's queues close together at end-of-work, and closed channels still
// hand out their buffered remainder, so the final drain loop strands
// nothing.
func (c *runCtx) readStealing(stream string, own chan delivery, sibs []chan delivery) (Buffer, bool) {
	t0 := time.Now()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		// Own queue first: demand-based balance within the copy set.
		select {
		case d, ok := <-own:
			if ok {
				return c.finishRead(stream, t0, d, true)
			}
			// Own queue closed: drain every sibling to exhaustion. A
			// sibling that is open-but-empty is mid-close (the close loop
			// walks all queues); yield and rescan.
			for {
				allClosed := true
				for _, sch := range sibs {
					if sch == own {
						continue
					}
					select {
					case d, ok := <-sch:
						if ok {
							return c.finishRead(stream, t0, d, true)
						}
					default:
						allClosed = false
					}
				}
				if allClosed {
					return c.finishRead(stream, t0, delivery{}, false)
				}
				select {
				case <-c.done:
					return c.finishRead(stream, t0, delivery{}, false)
				default:
					time.Sleep(50 * time.Microsecond)
				}
			}
		case <-c.done:
			c.readBlocked += time.Since(t0).Seconds()
			return Buffer{}, false
		default:
		}
		// Own queue empty: steal one buffer from a sibling, if any.
		for _, sch := range sibs {
			if sch == own {
				continue
			}
			select {
			case d, ok := <-sch:
				if ok {
					return c.finishRead(stream, t0, d, true)
				}
			default:
			}
		}
		// Nothing anywhere: wait briefly on the own queue, then rescan the
		// siblings — stealing is opportunistic, not a barrier.
		if timer == nil {
			timer = time.NewTimer(200 * time.Microsecond)
		} else {
			timer.Reset(200 * time.Microsecond)
		}
		select {
		case d, ok := <-own:
			if !timer.Stop() {
				<-timer.C
			}
			if ok {
				return c.finishRead(stream, t0, d, true)
			}
			// Closed: fall through via the next loop iteration's own-case.
			continue
		case <-c.done:
			if !timer.Stop() {
				<-timer.C
			}
			c.readBlocked += time.Since(t0).Seconds()
			return Buffer{}, false
		case <-timer.C:
		}
	}
}
