package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func targets(hostCopies ...int) []TargetInfo {
	var ts []TargetInfo
	for i, c := range hostCopies {
		ts = append(ts, TargetInfo{Host: string(rune('a' + i)), Copies: c})
	}
	return ts
}

func TestRoundRobinCycles(t *testing.T) {
	w := RoundRobin().NewWriter(targets(1, 1, 1))
	var picks []int
	for i := 0; i < 7; i++ {
		picks = append(picks, w.Pick(nil))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v", picks)
		}
	}
	if w.WantsAcks() {
		t.Fatal("RR should not want acks")
	}
}

func TestWRRProportions(t *testing.T) {
	// Hosts with 1, 2, 5 copies: over 8 picks each host gets exactly its
	// weight.
	w := WeightedRoundRobin().NewWriter(targets(1, 2, 5))
	counts := make([]int, 3)
	for i := 0; i < 8*10; i++ {
		counts[w.Pick(nil)]++
	}
	if counts[0] != 10 || counts[1] != 20 || counts[2] != 50 {
		t.Fatalf("WRR counts = %v, want [10 20 50]", counts)
	}
}

func TestWRRSmoothness(t *testing.T) {
	// Smooth WRR with weights (1,1,2) should not send two consecutive
	// buffers to a weight-1 host and should interleave the weight-2 host.
	w := WeightedRoundRobin().NewWriter(targets(1, 1, 2))
	var picks []int
	for i := 0; i < 8; i++ {
		picks = append(picks, w.Pick(nil))
	}
	// One full cycle is 4 picks: host 2 twice, hosts 0 and 1 once, spread.
	counts := make([]int, 3)
	for _, p := range picks[:4] {
		counts[p]++
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("cycle counts = %v", counts)
	}
	for i := 1; i < len(picks); i++ {
		if picks[i] == picks[i-1] && picks[i] != 2 {
			t.Fatalf("weight-1 host picked consecutively: %v", picks)
		}
	}
}

// Property: WRR distributes exactly weight_i picks to target i per cycle of
// total-weight picks, for random weights.
func TestWRRExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		ws := make([]int, n)
		total := 0
		for i := range ws {
			ws[i] = 1 + rng.Intn(6)
			total += ws[i]
		}
		w := WeightedRoundRobin().NewWriter(targets(ws...))
		counts := make([]int, n)
		for i := 0; i < total*3; i++ {
			counts[w.Pick(nil)]++
		}
		for i := range ws {
			if counts[i] != 3*ws[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDDPicksLeastUnacked(t *testing.T) {
	w := DemandDriven().NewWriter(targets(1, 1, 1))
	if got := w.Pick([]int{3, 1, 2}); got != 1 {
		t.Fatalf("DD picked %d, want 1", got)
	}
	if !w.WantsAcks() {
		t.Fatal("DD must want acks")
	}
}

func TestDDLocalTieBreak(t *testing.T) {
	ts := targets(1, 1, 1)
	ts[2].Local = true
	w := DemandDriven().NewWriter(ts)
	// All tied: the local target should win even though it is not first.
	if got := w.Pick([]int{2, 2, 2}); got != 2 {
		t.Fatalf("DD tie-break picked %d, want local target 2", got)
	}
	// Remote strictly better than local: remote wins.
	if got := w.Pick([]int{0, 2, 1}); got != 0 {
		t.Fatalf("DD picked %d, want 0", got)
	}
}

func TestDDStableFirstOnRemoteTies(t *testing.T) {
	w := DemandDriven().NewWriter(targets(1, 1, 1))
	if got := w.Pick([]int{1, 1, 1}); got != 0 {
		t.Fatalf("DD picked %d, want 0 (first of equal remotes)", got)
	}
}

// Property: DD never picks a target with strictly more unacked buffers than
// some other target.
func TestDDMinimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		ts := targets(make([]int, n)...)
		for i := range ts {
			ts[i].Copies = 1
			ts[i].Local = rng.Intn(2) == 0
		}
		w := DemandDriven().NewWriter(ts)
		un := make([]int, n)
		for i := range un {
			un[i] = rng.Intn(10)
		}
		got := w.Pick(un)
		for _, u := range un {
			if u < un[got] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"RR", "WRR", "DD"} {
		p := PolicyByName(name)
		if p == nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v", name, p)
		}
	}
	if PolicyByName("nope") != nil {
		t.Fatal("unknown policy should be nil")
	}
}
