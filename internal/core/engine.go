package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacutter/internal/elastic"
	"datacutter/internal/exec"
	"datacutter/internal/obs"
)

// Options configures a run on the real (goroutine) engine. The zero value
// is usable: RR policy, queue capacity 8, 256 KiB buffers, one unit of work.
type Options struct {
	// Policy is the default writer policy for every stream (RoundRobin if
	// nil).
	Policy Policy
	// StreamPolicy overrides the policy for individual streams by name.
	StreamPolicy map[string]Policy
	// QueueCap is the per-copy-set queue capacity in buffers (default 8).
	QueueCap int
	// BufferBytes is the default stream buffer size the runtime proposes;
	// it is clamped by the filters' DeclareBuffer bounds (default 256 KiB).
	BufferBytes int
	// UOWs describes the units of work; each entry is passed to the
	// filters via Ctx.Work. Nil means a single unit of work with a nil
	// descriptor.
	UOWs []any
	// Obs attaches the observability subsystem: buffer-lifecycle trace
	// events and live metrics (see internal/obs). Nil disables
	// instrumentation at near-zero hot-path cost.
	Obs *obs.Observer
	// ScaleSchedule seeds deterministic copy-set membership changes at
	// work-cycle boundaries: before unit of work BeforeUOW, the (Filter,
	// Host) entry's copy count becomes Copies (see elastic.ScaleStep).
	// Copies are spawned and retired between units of work — the paper's
	// work-cycle model rebuilds per-UOW state in Init, so membership can
	// change at the boundary without any state hand-off.
	ScaleSchedule []elastic.ScaleStep
	// Elastic enables the live autoscale controller: it samples copy-set
	// queue depth, DD ack-window occupancy, and p95 filter service time
	// every Interval, reweights WRR streams from observed throughput
	// mid-cycle, and applies copy-count changes at the next work-cycle
	// boundary, bounded by the config's Min/MaxCopies and Budget.
	Elastic *elastic.Config
	// StealWork lets a consumer copy with an empty queue opportunistically
	// drain sibling copy sets' queues on the same stream. Transparent
	// copies make any copy interchangeable, and deliveries carry their
	// producer-side ack path, so stolen buffers acknowledge the correct
	// window. Off by default: it trades strict per-host delivery placement
	// for latency, so replay-exact per-host accounting no longer matches
	// the writer's picks.
	StealWork bool
}

// Validate rejects option values that would otherwise be silently coerced
// to defaults. Zero means "use the default"; negative values are always a
// caller bug.
func (o *Options) Validate() error {
	if o.QueueCap < 0 {
		return fmt.Errorf("core: Options.QueueCap must be >= 0 (0 selects the default of 8), got %d", o.QueueCap)
	}
	if o.BufferBytes < 0 {
		return fmt.Errorf("core: Options.BufferBytes must be >= 0 (0 selects the default of 256 KiB), got %d", o.BufferBytes)
	}
	return nil
}

// policies bundles the default + per-stream overrides into the shared
// resolution logic (override > default > RR) used by all three engines.
func (o *Options) policies() exec.PolicyConfig {
	return exec.PolicyConfig{Default: o.Policy, PerStream: o.StreamPolicy}
}

func (o *Options) policyFor(stream string) Policy {
	return o.policies().For(stream)
}

func (o *Options) queueCap() int {
	if o.QueueCap > 0 {
		return o.QueueCap
	}
	return 8
}

func (o *Options) bufferBytes() int {
	if o.BufferBytes > 0 {
		return o.BufferBytes
	}
	return 256 << 10
}

// Runner executes a Graph under a Placement on the real engine: every
// transparent copy is a goroutine, every copy set shares one queue
// (demand-based balance within a host), and writer policies distribute
// buffers across copy sets.
type Runner struct {
	g    *Graph
	pl   *Placement
	opts Options

	copies map[string][]*copyInst
	stats  *Stats

	// pending holds copy-count changes the autoscale controller proposed
	// mid-cycle, applied at the next work-cycle boundary (see elastic.go).
	pendMu  sync.Mutex
	pending []pendingScale
}

type copyInst struct {
	filter    Filter
	name      string
	host      string
	globalIdx int
	total     int
}

// NewRunner validates the graph and placement and instantiates one filter
// instance per transparent copy. Instances persist across units of work, as
// in the paper's work-cycle model.
func NewRunner(g *Graph, pl *Placement, opts Options) (*Runner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(g); err != nil {
		return nil, err
	}
	r := &Runner{g: g, pl: pl, opts: opts, copies: make(map[string][]*copyInst), stats: newStats(g)}
	for _, name := range g.Filters() {
		total := pl.TotalCopies(name)
		idx := 0
		for _, e := range pl.Of(name) {
			for c := 0; c < e.Copies; c++ {
				filt := g.Factory(name)()
				attachObserver(filt, opts.Obs)
				r.copies[name] = append(r.copies[name], &copyInst{
					filter:    filt,
					name:      name,
					host:      e.Host,
					globalIdx: idx,
					total:     total,
				})
				idx++
			}
		}
		fs := r.stats.Filters[name]
		fs.Copies = total
		fs.BusySeconds = make([]float64, total)
		fs.WallSeconds = make([]float64, total)
		fs.ReadBlockedSeconds = make([]float64, total)
		fs.WriteBlockedSeconds = make([]float64, total)
	}
	return r, nil
}

// Instances returns the filter instances for a filter name in global copy
// order, so callers can retrieve results a sink filter accumulated.
func (r *Runner) Instances(name string) []Filter {
	out := make([]Filter, len(r.copies[name]))
	for i, c := range r.copies[name] {
		out[i] = c.filter
	}
	return out
}

// Stats returns the accumulated statistics. Valid after Run.
func (r *Runner) Stats() *Stats { return r.stats }

// Run executes every unit of work sequentially and returns the accumulated
// stats. The first filter error aborts the run. Between units of work the
// effective placement is re-derived from the scale schedule and any
// copy-count changes the live autoscale controller proposed during the
// previous cycle, and the copy sets are rescaled in place (see rescale).
func (r *Runner) Run() (*Stats, error) {
	uows := r.opts.UOWs
	if len(uows) == 0 {
		uows = []any{nil}
	}
	if err := r.validateSchedule(); err != nil {
		return r.stats, err
	}
	// The real engine's time domain is wall seconds since the run started.
	r.opts.Obs.SetClock(obs.NewWallClock())
	cur := r.snapshotEntries()
	start := time.Now()
	for i, work := range uows {
		due := elastic.StepsAt(r.opts.ScaleSchedule, i)
		pending, reasons := r.drainPending(i)
		due = append(due, pending...)
		if len(due) > 0 {
			cur = elastic.Apply(cur, due)
			r.rescale(cur, i, reasons)
		}
		t0 := time.Now()
		if err := r.runUOW(i, work); err != nil {
			return r.stats, err
		}
		r.stats.PerUOWSeconds = append(r.stats.PerUOWSeconds, time.Since(t0).Seconds())
	}
	r.stats.WallSeconds = time.Since(start).Seconds()
	return r.stats, nil
}

// delivery is one buffer in flight, carrying the DD ack path back to the
// producing copy's sliding window (nil for zero-overhead policies).
type delivery struct {
	buf       Buffer
	acks      exec.AckChan
	targetIdx int
	// ackEvery is the producer policy's ack coalescing factor (>= 1 when
	// acks is non-nil).
	ackEvery int
}

// streamMetrics are the per-stream live counters, resolved once at setup
// so hot-path updates never touch the registry lock. Nil when disabled.
type streamMetrics struct {
	buffers *obs.Counter
	bytes   *obs.Counter
	acks    *obs.Counter
}

// streamRT is the per-UOW runtime state of one logical stream.
type streamRT struct {
	spec      StreamSpec
	hosts     []string // consumer copy-set hosts, placement order
	copies    []int    // consumer copies per host
	chans     []chan delivery
	counts    *exec.Counts    // per-target deliveries, shared by producer copies
	producers *exec.Countdown // end-of-work: last producer closes the queues
	bufBytes  int
	metrics   *streamMetrics // nil unless Options.Obs is set

	// writers collects every producer copy's StreamWriter on this stream.
	// Appended during (single-threaded) context build, read by the
	// autoscale controller during Process for mid-cycle reweights and
	// window sampling; the two phases never overlap.
	writers []*exec.StreamWriter

	// DeclareBuffer bounds gathered during Init.
	mu       sync.Mutex
	declMin  int
	declMax  int // 0 = unbounded
	declared bool
}

func (s *streamRT) declare(min, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if min > s.declMin {
		s.declMin = min
	}
	if max > 0 && (s.declMax == 0 || max < s.declMax) {
		s.declMax = max
	}
	s.declared = true
}

func (s *streamRT) resolve(def int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := def
	if s.declMin > 0 && b < s.declMin {
		b = s.declMin
	}
	if s.declMax > 0 && b > s.declMax {
		b = s.declMax
	}
	s.bufBytes = b
}

func (r *Runner) runUOW(uow int, work any) error {
	qcap := r.opts.queueCap()

	// Build per-stream runtime state.
	streams := make(map[string]*streamRT)
	for _, sp := range r.g.Streams() {
		st := &streamRT{spec: sp, producers: exec.NewCountdown(r.pl.TotalCopies(sp.From))}
		for _, e := range r.pl.Of(sp.To) {
			st.hosts = append(st.hosts, e.Host)
			st.copies = append(st.copies, e.Copies)
			st.chans = append(st.chans, make(chan delivery, qcap))
		}
		st.counts = exec.NewCounts(len(st.hosts))
		if reg := r.opts.Obs.Registry(); reg != nil {
			st.metrics = &streamMetrics{
				buffers: reg.Counter("core.stream." + sp.Name + ".buffers"),
				bytes:   reg.Counter("core.stream." + sp.Name + ".bytes"),
				acks:    reg.Counter("core.stream." + sp.Name + ".acks"),
			}
		}
		streams[sp.Name] = st
	}

	ab := &abort{done: make(chan struct{})}
	done := ab.done
	fail := ab.fail

	// Build per-copy contexts.
	var ctxs []*runCtx
	for _, name := range r.g.Filters() {
		for _, ci := range r.copies[name] {
			c := &runCtx{
				r:        r,
				ci:       ci,
				uow:      uow,
				work:     work,
				done:     done,
				inputs:   make(map[string]chan delivery),
				inputRT:  make(map[string]*streamRT),
				writers:  make(map[string]*exec.StreamWriter),
				outputRT: make(map[string]*streamRT),
				o:        r.opts.Obs,
			}
			if reg := r.opts.Obs.Registry(); reg != nil {
				c.readStallH = reg.Histogram("core.read_stall_seconds")
				c.writeStallH = reg.Histogram("core.write_stall_seconds")
			}
			for _, sp := range r.g.Inputs(name) {
				st := streams[sp.Name]
				for i, h := range st.hosts {
					if h == ci.host {
						c.inputs[sp.Name] = st.chans[i]
						break
					}
				}
				if c.inputs[sp.Name] == nil {
					return fmt.Errorf("core: stream %s: consumer copy of %q on host %q has no queue (placement mismatch)", sp.Name, name, ci.host)
				}
				c.inputRT[sp.Name] = st
			}
			for _, sp := range r.g.Outputs(name) {
				st := streams[sp.Name]
				infos := make([]TargetInfo, len(st.hosts))
				for i, h := range st.hosts {
					infos[i] = TargetInfo{Host: h, Copies: st.copies[i], Local: h == ci.host}
				}
				port := &chanPort{c: c, st: st, stream: sp.Name}
				sw := exec.NewStreamWriter(sp.Name, r.opts.policyFor(sp.Name), infos, port, st.counts,
					exec.Meta{Obs: r.opts.Obs, Filter: ci.name, Copy: ci.globalIdx, Host: ci.host, UOW: uow})
				if sw.WantsAcks() {
					// Sized (exec.AckCap) so a consumer's ack send can never
					// block: at most (queue capacity + copies) buffers per
					// target can be un-acked from this producer at once.
					port.acks = exec.NewAckChan(exec.AckCap(infos, qcap))
					sw.BindAckSource(port.acks)
				}
				c.writers[sp.Name] = sw
				c.outputRT[sp.Name] = st
				st.writers = append(st.writers, sw)
			}
			if r.opts.StealWork {
				c.inputAll = make(map[string][]chan delivery, len(c.inputs))
				for _, sp := range r.g.Inputs(name) {
					c.inputAll[sp.Name] = streams[sp.Name].chans
				}
			}
			if r.opts.Elastic != nil {
				if reg := r.opts.Obs.Registry(); reg != nil {
					c.svcH = reg.Histogram("core.filter." + name + ".service_seconds")
				}
			}
			ctxs = append(ctxs, c)
		}
	}

	// Phase 1: Init (concurrent), gathering buffer declarations.
	if err := r.runPhase(ctxs, ab, func(c *runCtx) error { return c.ci.filter.Init(c) }); err != nil {
		return err
	}
	for _, st := range streams {
		st.resolve(r.opts.bufferBytes())
	}

	// Autoscale controller: samples load during Process, reweights WRR
	// mid-cycle, and queues copy-count changes for the next boundary.
	var ctlWG sync.WaitGroup
	stopCtl := make(chan struct{})
	if r.opts.Elastic != nil {
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			r.elasticLoop(streams, uow, stopCtl)
		}()
	}

	// Phase 2: Process, with end-of-work propagation: when the last
	// producer copy of a stream finishes, its copy-set queues close.
	var wg sync.WaitGroup
	for _, c := range ctxs {
		wg.Add(1)
		go func(c *runCtx) {
			defer wg.Done()
			c.o.Emit(obs.Event{Kind: obs.KindProcessStart, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, UOW: c.uow})
			t0 := time.Now()
			err := safeCall(func() error { return c.ci.filter.Process(c) })
			wall := time.Since(t0).Seconds()
			c.o.Emit(obs.Event{Kind: obs.KindProcessEnd, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, UOW: c.uow})
			fs := r.stats.Filters[c.ci.name]
			fs.WallSeconds[c.ci.globalIdx] += wall
			fs.BusySeconds[c.ci.globalIdx] += wall - c.readBlocked - c.writeBlocked
			fs.ReadBlockedSeconds[c.ci.globalIdx] += c.readBlocked
			fs.WriteBlockedSeconds[c.ci.globalIdx] += c.writeBlocked
			// End-of-work: this copy will write no more buffers.
			for _, sp := range r.g.Outputs(c.ci.name) {
				st := streams[sp.Name]
				if st.producers.Done() {
					for _, ch := range st.chans {
						close(ch)
					}
				}
			}
			if err != nil {
				fail(fmt.Errorf("core: filter %s copy %d: %w", c.ci.name, c.ci.globalIdx, err))
			}
		}(c)
	}
	wg.Wait()
	close(stopCtl)
	ctlWG.Wait()
	if err := ab.err(); err != nil {
		return err
	}

	// Phase 3: Finalize (concurrent).
	if err := r.runPhase(ctxs, ab, func(c *runCtx) error { return c.ci.filter.Finalize(c) }); err != nil {
		return err
	}

	// Fold per-target receive counts into stats.
	for name, st := range streams {
		st.counts.Fold(st.hosts, r.stats.Streams[name].PerTargetHost)
	}
	return nil
}

// abort records the first failure and cancels the unit of work.
type abort struct {
	done chan struct{}
	once sync.Once
	mu   sync.Mutex
	e    error
}

func (a *abort) fail(err error) {
	a.once.Do(func() {
		a.mu.Lock()
		a.e = err
		a.mu.Unlock()
		close(a.done)
	})
}

func (a *abort) err() error {
	select {
	case <-a.done:
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.e
	default:
		return nil
	}
}

// safeCall invokes a filter callback, converting panics into errors so a
// buggy filter aborts the run instead of crashing the process.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("filter panicked: %v", r)
		}
	}()
	return fn()
}

func (r *Runner) runPhase(ctxs []*runCtx, ab *abort, f func(*runCtx) error) error {
	var wg sync.WaitGroup
	for _, c := range ctxs {
		wg.Add(1)
		go func(c *runCtx) {
			defer wg.Done()
			t0 := time.Now()
			err := safeCall(func() error { return f(c) })
			// Init/Finalize work counts toward the filter's busy time.
			dt := time.Since(t0).Seconds()
			fs := r.stats.Filters[c.ci.name]
			fs.BusySeconds[c.ci.globalIdx] += dt
			fs.WallSeconds[c.ci.globalIdx] += dt
			if err != nil {
				ab.fail(fmt.Errorf("core: filter %s copy %d: %w", c.ci.name, c.ci.globalIdx, err))
			}
		}(c)
	}
	wg.Wait()
	return ab.err()
}

// chanPort binds the shared stream-writer runtime (exec.StreamWriter) to
// this engine's transport: a buffered Go channel per copy set. Deliver owns
// everything transport-side of the pick — backpressure stalls,
// cancellation, stream stats, and the enqueue trace event.
type chanPort struct {
	c      *runCtx
	st     *streamRT
	stream string
	acks   exec.AckChan // non-nil when the policy wants acks
}

func (p *chanPort) Deliver(idx int, b Buffer, ackEvery int) error {
	c := p.c
	d := delivery{buf: b, targetIdx: idx}
	if ackEvery > 0 {
		d.acks = p.acks
		d.ackEvery = ackEvery
	}
	if err := c.enqueue(p.st, p.stream, idx, d); err != nil {
		return err
	}
	ss := c.r.stats.Streams[p.stream]
	atomic.AddInt64(&ss.Buffers, 1)
	atomic.AddInt64(&ss.Bytes, int64(b.Size))
	atomic.AddInt64(&c.r.stats.Filters[c.ci.name].BuffersOut, 1)
	if c.o != nil {
		if m := p.st.metrics; m != nil {
			m.buffers.Inc()
			m.bytes.Add(int64(b.Size))
		}
		c.o.Emit(obs.Event{Kind: obs.KindEnqueue, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: p.stream, Target: p.st.hosts[idx], Bytes: b.Size, UOW: c.uow})
	}
	return nil
}

// runCtx implements Ctx for the real engine.
type runCtx struct {
	r    *Runner
	ci   *copyInst
	uow  int
	work any
	done chan struct{}

	inputs   map[string]chan delivery
	inputRT  map[string]*streamRT
	writers  map[string]*exec.StreamWriter
	outputRT map[string]*streamRT
	// inputAll holds every copy set's queue per input stream when work
	// stealing is on (Options.StealWork); nil otherwise.
	inputAll map[string][]chan delivery

	// o is the attached observer (nil = disabled; every use is guarded or
	// nil-receiver safe, so the off cost is a pointer comparison).
	o           *obs.Observer
	readStallH  *obs.Histogram
	writeStallH *obs.Histogram

	// svcH samples inter-read service time for the autoscale controller's
	// p95 signal (elastic mode with obs attached only).
	svcH    *obs.Histogram
	svcLast time.Time

	readBlocked  float64
	writeBlocked float64

	// acks coalesces consumer-side acknowledgments per (stream, ack
	// channel, target) for batched-ack policies.
	acks *exec.Coalescer[ackPendingKey]
}

type ackPendingKey struct {
	stream string
	ch     exec.AckChan
	target int
}

var _ Ctx = (*runCtx)(nil)

func (c *runCtx) Read(stream string) (Buffer, bool) {
	ch, ok := c.inputs[stream]
	if !ok {
		panic(fmt.Sprintf("core: filter %s reads unknown input stream %q", c.ci.name, stream))
	}
	if sibs := c.inputAll[stream]; len(sibs) > 1 {
		return c.readStealing(stream, ch, sibs)
	}
	t0 := time.Now()
	if c.o != nil {
		// Non-blocking first attempt so a read that actually stalls gets a
		// stall-start/stall-end trace span around the wait.
		select {
		case d, ok := <-ch:
			return c.finishRead(stream, t0, d, ok)
		case <-c.done:
			c.readBlocked += time.Since(t0).Seconds()
			return Buffer{}, false
		default:
		}
		c.emitStall(obs.KindStallStart, stream, "read")
		defer func() {
			c.readStallH.Observe(time.Since(t0).Seconds())
			c.emitStall(obs.KindStallEnd, stream, "read")
		}()
	}
	select {
	case d, ok := <-ch:
		return c.finishRead(stream, t0, d, ok)
	case <-c.done:
		c.readBlocked += time.Since(t0).Seconds()
		return Buffer{}, false
	}
}

// finishRead accounts a completed Read: blocked time, end-of-work ack
// flushing, demand-driven acknowledgment, and input accounting.
func (c *runCtx) finishRead(stream string, t0 time.Time, d delivery, ok bool) (Buffer, bool) {
	c.readBlocked += time.Since(t0).Seconds()
	if !ok {
		c.flushAcks()
		return Buffer{}, false
	}
	if d.acks != nil {
		c.ack(stream, d)
	}
	if c.svcH != nil {
		now := time.Now()
		if !c.svcLast.IsZero() {
			c.svcH.Observe(now.Sub(c.svcLast).Seconds())
		}
		c.svcLast = now
	}
	atomic.AddInt64(&c.r.stats.Filters[c.ci.name].BuffersIn, 1)
	return d.buf, true
}

// emitStall emits one stall edge for this copy (obs enabled only).
func (c *runCtx) emitStall(k obs.Kind, stream, dir string) {
	c.o.Emit(obs.Event{Kind: k, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, UOW: c.uow, Note: dir})
}

// ack acknowledges one consumed buffer as processing begins (paper §2),
// coalescing per the producer policy's batch factor (exec.Coalescer). The
// ack channel is sized (exec.AckCap) so sends cannot block.
func (c *runCtx) ack(stream string, d delivery) {
	if c.acks == nil {
		c.acks = exec.NewCoalescer[ackPendingKey](func(key ackPendingKey, n int) {
			key.ch.Ack(key.target, n)
			c.ackSent(key.stream, n)
		})
	}
	c.acks.Ack(ackPendingKey{stream: stream, ch: d.acks, target: d.targetIdx}, d.ackEvery)
}

// ackSent accounts one acknowledgment message covering n buffers.
func (c *runCtx) ackSent(stream string, n int) {
	atomic.AddInt64(&c.r.stats.Streams[stream].Acks, 1)
	if c.o != nil {
		if st := c.inputRT[stream]; st != nil && st.metrics != nil {
			st.metrics.acks.Inc()
		}
		c.o.Emit(obs.Event{Kind: obs.KindAck, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, N: n, UOW: c.uow})
	}
}

// flushAcks releases coalesced acknowledgments at end-of-work (each flush
// counts as one acknowledgment message, as it would on the wire).
func (c *runCtx) flushAcks() {
	if c.acks != nil {
		c.acks.Flush()
	}
}

// Write hands the buffer to the shared stream-writer runtime: ack drain,
// policy pick, and window update happen in exec.StreamWriter; the chanPort
// Deliver callback brings the buffer back into this engine's channels.
func (c *runCtx) Write(stream string, b Buffer) error {
	sw, ok := c.writers[stream]
	if !ok {
		panic(fmt.Sprintf("core: filter %s writes unknown output stream %q", c.ci.name, stream))
	}
	return sw.Write(b)
}

// enqueue places a delivery on the chosen copy-set queue, tracing a stall
// span when the queue is full and observability is on.
func (c *runCtx) enqueue(st *streamRT, stream string, idx int, d delivery) error {
	t0 := time.Now()
	if c.o != nil {
		select {
		case st.chans[idx] <- d:
			c.writeBlocked += time.Since(t0).Seconds()
			return nil
		case <-c.done:
			c.writeBlocked += time.Since(t0).Seconds()
			return ErrCancelled
		default:
		}
		c.emitStall(obs.KindStallStart, stream, "write")
		defer func() {
			c.writeStallH.Observe(time.Since(t0).Seconds())
			c.emitStall(obs.KindStallEnd, stream, "write")
		}()
	}
	select {
	case st.chans[idx] <- d:
		c.writeBlocked += time.Since(t0).Seconds()
	case <-c.done:
		c.writeBlocked += time.Since(t0).Seconds()
		return ErrCancelled
	}
	return nil
}

func (c *runCtx) Compute(float64)     {} // real work is real on this engine
func (c *runCtx) ChargeDisk(int, int) {}

func (c *runCtx) DeclareBuffer(stream string, minBytes, maxBytes int) {
	if st, ok := c.outputRT[stream]; ok {
		st.declare(minBytes, maxBytes)
		return
	}
	if st, ok := c.inputRT[stream]; ok {
		st.declare(minBytes, maxBytes)
		return
	}
	panic(fmt.Sprintf("core: filter %s declares unknown stream %q", c.ci.name, stream))
}

func (c *runCtx) BufferBytes(stream string) int {
	if st, ok := c.outputRT[stream]; ok {
		return st.bufBytes
	}
	if st, ok := c.inputRT[stream]; ok {
		return st.bufBytes
	}
	panic(fmt.Sprintf("core: filter %s queries unknown stream %q", c.ci.name, stream))
}

func (c *runCtx) Host() string     { return c.ci.host }
func (c *runCtx) CopyIndex() int   { return c.ci.globalIdx }
func (c *runCtx) TotalCopies() int { return c.ci.total }
func (c *runCtx) UOW() int         { return c.uow }
func (c *runCtx) Work() any        { return c.work }
