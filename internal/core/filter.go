// Package core implements a DataCutter-style component framework: an
// application is decomposed into filters connected by unidirectional
// streams that carry fixed-size buffers. Filters can be transparently
// replicated — executed as multiple copies across hosts without the filter
// being aware of the replication — and the runtime distributes each
// produced buffer to one consumer copy set according to a configurable
// writer policy (round robin, weighted round robin, or demand driven).
//
// The package contains the engine-neutral model (Graph, Placement, Policy,
// Filter) and a real execution engine backed by goroutines and channels.
// The same model runs unchanged on a simulated heterogeneous cluster via
// internal/simrt.
package core

import (
	"fmt"

	"datacutter/internal/exec"
	"datacutter/internal/obs"
)

// Buffer is the unit of data carried by a stream: a fixed-size container
// written by a producer filter and consumed by exactly one copy of the
// consumer filter. Payload holds the application data (voxels, triangles,
// pixel runs — or workload descriptors on the simulated engine); Size is
// the serialized size in bytes, used for accounting and transfer-cost
// modeling. The type is an alias for exec.Buffer, the unit the shared
// stream-writer runtime moves.
type Buffer = exec.Buffer

// Filter is a user-defined component. The runtime drives each copy of a
// filter through work cycles (units of work): Init, then Process until all
// input streams reach end-of-work, then Finalize.
type Filter interface {
	// Init prepares per-unit-of-work resources (e.g. allocates a z-buffer)
	// and may declare stream buffer sizes via ctx.DeclareBuffer.
	Init(ctx Ctx) error
	// Process reads buffers from input streams and writes buffers to output
	// streams. It must return once every input stream has reported
	// end-of-work (Read returned ok == false); source filters return once
	// they have produced all their data.
	Process(ctx Ctx) error
	// Finalize releases unit-of-work resources and may emit final results
	// (a combine filter typically writes or stores its merged output here).
	Finalize(ctx Ctx) error
}

// ObserverSetter is an optional Filter extension. A filter that owns an
// instrumented subsystem — e.g. a dataset.Store whose predicate pruning
// publishes chunks-pruned/bytes-skipped metrics — implements it to receive
// the engine's observer. Engines invoke it once per copy at instantiation,
// before any work cycle; the argument may be nil (observability disabled).
type ObserverSetter interface {
	SetObserver(o *obs.Observer)
}

// attachObserver hands o to f when f opts in via ObserverSetter.
func attachObserver(f Filter, o *obs.Observer) {
	if s, ok := f.(ObserverSetter); ok {
		s.SetObserver(o)
	}
}

// Ctx is the runtime interface handed to a filter copy. It is implemented
// by both the real engine (this package) and the simulated engine
// (internal/simrt), so a filter written against Ctx runs on either.
type Ctx interface {
	// Read dequeues the next buffer from the named input stream, blocking
	// until one is available. ok is false when the stream has reached
	// end-of-work (all producer copies finished and the queue drained) or
	// the run was cancelled.
	Read(stream string) (b Buffer, ok bool)
	// Write sends a buffer on the named output stream. The runtime selects
	// the destination copy set using the stream's writer policy. It blocks
	// while the destination queue is full and returns an error only if the
	// run was cancelled.
	Write(stream string, b Buffer) error

	// Compute charges `refSeconds` seconds of reference-CPU work. On the
	// real engine this is a no-op (the work is the real computation the
	// filter just did); on the simulated engine it advances virtual time
	// under the host's processor-sharing CPU model.
	Compute(refSeconds float64)
	// ChargeDisk charges a read of `bytes` from the host's disk `disk`
	// (modulo the host's disk count). No-op on the real engine.
	ChargeDisk(disk int, bytes int)

	// DeclareBuffer discloses the minimum and optional maximum buffer size
	// (bytes) the filter wants for a stream; the runtime chooses the actual
	// size within those bounds. maxBytes <= 0 means unbounded. Valid in
	// Init.
	DeclareBuffer(stream string, minBytes, maxBytes int)
	// BufferBytes returns the buffer size the runtime chose for a stream.
	BufferBytes(stream string) int

	// Host returns the name of the host this copy runs on.
	Host() string
	// CopyIndex returns this copy's global index in [0, TotalCopies).
	CopyIndex() int
	// TotalCopies returns the number of transparent copies of this filter.
	TotalCopies() int
	// UOW returns the zero-based index of the current unit of work.
	UOW() int
	// Work returns the application-supplied descriptor for the current
	// unit of work (Options.UOWs entry), e.g. a timestep + view parameters.
	Work() any
}

// BaseFilter provides no-op Init and Finalize so simple filters only
// implement Process.
type BaseFilter struct{}

// Init implements Filter.
func (BaseFilter) Init(Ctx) error { return nil }

// Finalize implements Filter.
func (BaseFilter) Finalize(Ctx) error { return nil }

// ErrCancelled is returned by Ctx.Write when the run has been aborted
// (another filter failed).
var ErrCancelled = fmt.Errorf("core: run cancelled")
