package core

import "datacutter/internal/exec"

// The writer-policy layer lives in internal/exec (the transport-agnostic
// stream-writer runtime shared by all three engines); core re-exports it
// so filter and experiment code keeps reading in paper vocabulary —
// core.DemandDriven(), core.TargetInfo — without importing the runtime
// package. The aliases are true type aliases: a core.Policy IS an
// exec.Policy, so values flow between the layers with no conversion.

// TargetInfo describes one consumer copy set (all transparent copies of
// the consumer filter on one host) from the point of view of a particular
// producer copy.
type TargetInfo = exec.TargetInfo

// Policy selects, for each buffer a producer copy writes, which consumer
// copy set receives it: Round Robin, Weighted Round Robin, or Demand
// Driven (the three policies evaluated in the paper, §2).
type Policy = exec.Policy

// Writer is per-(producer copy, stream) policy state.
type Writer = exec.Writer

// AckBatcher is an optional Writer extension for coalesced demand-driven
// acknowledgments; see exec.AckBatcher.
type AckBatcher = exec.AckBatcher

// RoundRobin returns the RR policy: cyclic distribution of buffers across
// copy sets, one buffer per host per cycle.
func RoundRobin() Policy { return exec.RoundRobin() }

// WeightedRoundRobin returns the WRR policy: cyclic distribution where
// each host receives buffers in linear proportion to the number of
// consumer copies it runs.
func WeightedRoundRobin() Policy { return exec.WeightedRoundRobin() }

// DemandDriven returns the DD policy: the paper's sliding-window mechanism
// that sends each buffer to the copy set with the fewest unacknowledged
// buffers, preferring a colocated copy set on ties.
func DemandDriven() Policy { return exec.DemandDriven() }

// DemandDrivenBatched returns the DD policy with acknowledgments coalesced
// k-fold.
func DemandDrivenBatched(k int) Policy { return exec.DemandDrivenBatched(k) }

// AckBatchOf returns a writer's coalescing factor (1 when unbatched).
func AckBatchOf(w Writer) int { return exec.AckBatchOf(w) }

// PolicyByName returns the policy for a short name ("RR", "WRR", "DD",
// "DD/<k>"), or nil if unknown. The batch factor in "DD/<k>" must be a
// bare positive integer; malformed spellings are rejected.
func PolicyByName(name string) Policy { return exec.PolicyByName(name) }
