package core

import (
	"testing"
)

func TestDemandDrivenBatchedBasics(t *testing.T) {
	p := DemandDrivenBatched(4)
	if p.Name() != "DD/4" {
		t.Fatalf("name = %q", p.Name())
	}
	w := p.NewWriter(targets(1, 1))
	if !w.WantsAcks() {
		t.Fatal("batched DD must still want acks")
	}
	if AckBatchOf(w) != 4 {
		t.Fatalf("AckBatchOf = %d", AckBatchOf(w))
	}
	// Plain writers report factor 1.
	if AckBatchOf(DemandDriven().NewWriter(targets(1))) != 1 {
		t.Fatal("plain DD should be unbatched")
	}
	if AckBatchOf(RoundRobin().NewWriter(targets(1))) != 1 {
		t.Fatal("RR should be unbatched")
	}
	// Degenerate factor clamps to plain DD behavior.
	if DemandDrivenBatched(0).Name() != "DD/1" {
		t.Fatalf("clamped name = %q", DemandDrivenBatched(0).Name())
	}
}

func TestPolicyByNameBatched(t *testing.T) {
	p := PolicyByName("DD/8")
	if p == nil || p.Name() != "DD/8" {
		t.Fatalf("PolicyByName(DD/8) = %v", p)
	}
	if PolicyByName("DD/x") != nil {
		t.Fatal("malformed batched name accepted")
	}
}

// Batched DD must still deliver every buffer exactly once and produce
// fewer acknowledgment messages than per-buffer DD.
func TestBatchedAcksDeliverEverything(t *testing.T) {
	run := func(pol Policy) (*Stats, int) {
		g, got := pipelineGraph(400)
		pl := NewPlacement().
			Place("S", "h0", 1).
			Place("D", "h0", 1).Place("D", "h1", 1).
			Place("C", "h0", 1)
		r, err := NewRunner(g, pl, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		checkDoubled(t, *got, 400)
		return st, len(*got)
	}
	plain, _ := run(DemandDriven())
	batched, _ := run(DemandDrivenBatched(8))
	if batched.Streams["nums"].Acks >= plain.Streams["nums"].Acks {
		t.Fatalf("batched acks (%d) should be fewer than plain (%d)",
			batched.Streams["nums"].Acks, plain.Streams["nums"].Acks)
	}
	// Roughly k-fold fewer (flush remainders allowed).
	if batched.Streams["nums"].Acks > plain.Streams["nums"].Acks/4 {
		t.Fatalf("batched acks (%d) not substantially coalesced (plain %d)",
			batched.Streams["nums"].Acks, plain.Streams["nums"].Acks)
	}
}

func TestBatchedAcksMultiUOW(t *testing.T) {
	g, got := pipelineGraph(60)
	pl := NewPlacement().
		Place("S", "h0", 1).Place("D", "h0", 2).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{Policy: DemandDrivenBatched(7), UOWs: []any{1, 2, 3}})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 180 {
		t.Fatalf("collected %d, want 180", len(*got))
	}
}
