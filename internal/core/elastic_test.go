package core

import (
	"sync"
	"testing"
	"time"

	"datacutter/internal/elastic"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// TestScaleScheduleRescalesBetweenUOWs drives a 3-UOW pipeline through a
// seeded scale-up then scale-down of the doubler's copy set and checks
// conservation of all deliveries plus the emitted elastic metrics/events.
func TestScaleScheduleRescalesBetweenUOWs(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(100)
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("D", "h0", 1).
		Place("D", "h1", 1).
		Place("C", "h0", 1)
	ring := obs.NewRingSink(8192)
	o := obs.New(ring, nil)
	r, err := NewRunner(g, pl, Options{
		UOWs: []any{0, 1, 2},
		Obs:  o,
		ScaleSchedule: []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: "D", Host: "h1", Copies: 3}, // scale up
			{BeforeUOW: 2, Filter: "D", Host: "h1", Copies: 1}, // scale down
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 3 * 100; len(*got) != want {
		t.Fatalf("collected %d values across 3 UOWs, want %d", len(*got), want)
	}
	reg := o.Registry()
	if v := reg.Counter(elastic.MetricCopiesAdded).Value(); v != 2 {
		t.Fatalf("copies_added = %d, want 2", v)
	}
	if v := reg.Counter(elastic.MetricCopiesRemoved).Value(); v != 2 {
		t.Fatalf("copies_removed = %d, want 2", v)
	}
	if v := reg.Gauge(elastic.GaugeCopysetSize + ".D.h1").Value(); v != 1 {
		t.Fatalf("copyset_size gauge = %d, want 1", v)
	}
	var ups, downs int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindScaleUp:
			ups++
			if e.Filter != "D" || e.Host != "h1" || e.Copy != 3 || e.UOW != 1 {
				t.Fatalf("scale-up event: %+v", e)
			}
		case obs.KindScaleDown:
			downs++
			if e.Copy != 1 || e.UOW != 2 {
				t.Fatalf("scale-down event: %+v", e)
			}
		}
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("scale events up=%d down=%d, want 1/1", ups, downs)
	}
	// The runner's placement reflects the final effective plan.
	if n := r.pl.TotalCopies("D"); n != 2 {
		t.Fatalf("final D copies = %d, want 2", n)
	}
	if len(r.copies["D"]) != 2 {
		t.Fatalf("final D instances = %d, want 2", len(r.copies["D"]))
	}
}

// TestRescalePreservesUntouchedInstances checks that a rescale of one
// filter leaves other filters' instances (and their accumulated state)
// alone, and that surviving slots of the scaled filter keep their
// instances.
func TestRescalePreservesUntouchedInstances(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(10)
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("D", "h0", 2).
		Place("C", "h0", 1)
	r, err := NewRunner(g, pl, Options{
		UOWs: []any{0, 1},
		ScaleSchedule: []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: "D", Host: "h0", Copies: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srcBefore := r.copies["S"][0]
	dBefore := append([]*copyInst(nil), r.copies["D"]...)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.copies["S"][0] != srcBefore {
		t.Fatal("untouched filter's instance was replaced")
	}
	for i, ci := range dBefore {
		if r.copies["D"][i] != ci {
			t.Fatalf("surviving D instance %d was replaced", i)
		}
	}
	if r.copies["D"][2].globalIdx != 2 || r.copies["D"][2].total != 3 {
		t.Fatalf("spawned instance indexing: idx=%d total=%d", r.copies["D"][2].globalIdx, r.copies["D"][2].total)
	}
	if len(*got) != 20 {
		t.Fatalf("collected %d, want 20", len(*got))
	}
	// Stats slices grew to the peak copy count.
	fs := r.stats.Filters["D"]
	if fs.Copies != 3 || len(fs.BusySeconds) != 3 {
		t.Fatalf("stats: copies=%d busy=%d", fs.Copies, len(fs.BusySeconds))
	}
}

func TestScaleScheduleValidation(t *testing.T) {
	g, _ := pipelineGraph(1)
	pl := NewPlacement().Place("S", "h0", 1).Place("D", "h0", 1).Place("C", "h0", 1)
	r, err := NewRunner(g, pl, Options{ScaleSchedule: []elastic.ScaleStep{
		{BeforeUOW: 1, Filter: "nope", Host: "h0", Copies: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("unknown filter in scale schedule accepted")
	}
	r, err = NewRunner(g, pl, Options{ScaleSchedule: []elastic.ScaleStep{
		{BeforeUOW: 0, Filter: "D", Host: "h0", Copies: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("BeforeUOW 0 accepted")
	}
}

// slowCopy sleeps per buffer so one copy set lags and stealing matters.
type slowCopy struct {
	BaseFilter
	in, out string
	slow    time.Duration
	host    string // sleep only on this host
}

func (f *slowCopy) Process(ctx Ctx) error {
	for {
		b, ok := ctx.Read(f.in)
		if !ok {
			return nil
		}
		if ctx.Host() == f.host && f.slow > 0 {
			time.Sleep(f.slow)
		}
		if err := ctx.Write(f.out, Buffer{Payload: b.Payload, Size: b.Size}); err != nil {
			return err
		}
	}
}

// TestWorkStealingDrainsHotQueue runs a two-host middle stage where one
// host is pathologically slow; with stealing on, the fast host's copies
// drain the slow host's backlog and every buffer still arrives exactly
// once.
func TestWorkStealingDrainsHotQueue(t *testing.T) {
	leakcheck.Check(t)
	const n = 200
	var mu sync.Mutex
	got := &[]int{}
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &source{n: n, stream: "in"} })
	g.AddFilter("W", func() Filter { return &slowCopy{in: "in", out: "out", slow: 2 * time.Millisecond, host: "slow"} })
	g.AddFilter("C", func() Filter { return &sharedCollector{in: "out", mu: &mu, got: got} })
	g.Connect("S", "W", "in")
	g.Connect("W", "C", "out")
	pl := NewPlacement().
		Place("S", "fast", 1).
		Place("W", "slow", 1).
		Place("W", "fast", 2).
		Place("C", "fast", 1)
	r, err := NewRunner(g, pl, Options{StealWork: true, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	mu.Lock()
	count := len(*got)
	seen := make(map[int]int, count)
	for _, v := range *got {
		seen[v]++
	}
	mu.Unlock()
	if count != n {
		t.Fatalf("collected %d, want %d (lost or duplicated by stealing)", count, n)
	}
	for v, k := range seen {
		if k != 1 {
			t.Fatalf("value %d delivered %d times", v, k)
		}
	}
	// Without stealing, RR sends half the buffers to the slow host:
	// >= 100 * 2ms = 200ms serialized. With stealing the fast copies take
	// most of the backlog; leave slack for scheduler noise.
	if elapsed > 150*time.Millisecond {
		t.Logf("note: stealing run took %v (scheduler-dependent)", elapsed)
	}
}

// TestElasticControllerQueuesScaleUp runs a hot pipeline with the live
// controller and verifies it proposed a scale-up applied at a later
// work-cycle boundary, within budget.
func TestElasticControllerQueuesScaleUp(t *testing.T) {
	leakcheck.Check(t)
	const n = 60
	var mu sync.Mutex
	got := &[]int{}
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &source{n: n, stream: "in"} })
	g.AddFilter("W", func() Filter { return &slowCopy{in: "in", out: "out", slow: time.Millisecond, host: "h0"} })
	g.AddFilter("C", func() Filter { return &sharedCollector{in: "out", mu: &mu, got: got} })
	g.Connect("S", "W", "in")
	g.Connect("W", "C", "out")
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("W", "h0", 1).
		Place("C", "h0", 1)
	o := obs.New(obs.NewRingSink(64), nil)
	r, err := NewRunner(g, pl, Options{
		UOWs:     []any{0, 1, 2},
		QueueCap: 4,
		Obs:      o,
		Elastic: &elastic.Config{
			MaxCopies: 3,
			Budget:    5,
			Interval:  2 * time.Millisecond,
			// Sources have no input queue; only W and C are candidates.
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3*n {
		t.Fatalf("collected %d, want %d", len(*got), 3*n)
	}
	// The slow W queue (cap 4) saturates; the controller must have scaled
	// something up by the end, and never past the budget.
	total := 0
	for _, cs := range r.copies {
		total += len(cs)
	}
	if added := o.Registry().Counter(elastic.MetricCopiesAdded).Value(); added < 1 {
		t.Fatalf("controller never scaled up (copies_added = %d)", added)
	}
	if total > 5 {
		t.Fatalf("total copies %d exceed budget 5", total)
	}
}
