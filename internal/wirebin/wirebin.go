// Package wirebin provides bulk little-endian conversion between byte
// slices and float32 slices — the hot primitive shared by the dist wire
// codecs and the dataset store's chunk reader. On little-endian hosts the
// conversion is a single memmove through an unsafe []byte view; on
// big-endian hosts it falls back to a per-element loop so the on-disk and
// on-wire formats stay little-endian everywhere.
package wirebin

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLE reports whether the host is little-endian (decided once at init).
var hostLE = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// f32Bytes returns the raw byte view of a float32 slice. Callers must not
// let the view outlive src.
func f32Bytes(src []float32) []byte {
	if len(src) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 4*len(src))
}

// AppendFloat32s appends the little-endian encoding of src to dst.
func AppendFloat32s(dst []byte, src []float32) []byte {
	if hostLE {
		return append(dst, f32Bytes(src)...)
	}
	for _, v := range src {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// Float32s bulk-decodes little-endian float32s from src into dst,
// returning the number of elements decoded: min(len(dst), len(src)/4).
func Float32s(dst []float32, src []byte) int {
	n := len(src) / 4
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	if hostLE {
		copy(f32Bytes(dst[:n]), src[:4*n])
		return n
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return n
}
