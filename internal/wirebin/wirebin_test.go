package wirebin

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestFloat32sRoundTrip(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, math.MaxFloat32, math.SmallestNonzeroFloat32, float32(math.Inf(1)), 3.14159}
	raw := AppendFloat32s([]byte{0xAA}, src) // prefix to catch offset bugs
	if len(raw) != 1+4*len(src) {
		t.Fatalf("encoded length = %d, want %d", len(raw), 1+4*len(src))
	}
	// The wire bytes must be little-endian regardless of host order.
	for i, v := range src {
		got := binary.LittleEndian.Uint32(raw[1+4*i:])
		if got != math.Float32bits(v) {
			t.Fatalf("element %d = %#x, want %#x", i, got, math.Float32bits(v))
		}
	}
	dst := make([]float32, len(src))
	if n := Float32s(dst, raw[1:]); n != len(src) {
		t.Fatalf("decoded %d elements, want %d", n, len(src))
	}
	for i := range src {
		if math.Float32bits(dst[i]) != math.Float32bits(src[i]) {
			t.Fatalf("element %d = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestFloat32sShortInputs(t *testing.T) {
	dst := make([]float32, 4)
	if n := Float32s(dst, nil); n != 0 {
		t.Fatalf("nil src decoded %d", n)
	}
	if n := Float32s(dst, []byte{1, 2, 3}); n != 0 {
		t.Fatalf("3-byte src decoded %d", n)
	}
	// Trailing partial element is ignored; dst capacity caps the count.
	raw := AppendFloat32s(nil, []float32{1, 2, 3, 4, 5})
	if n := Float32s(dst, append(raw, 0xFF)); n != 4 {
		t.Fatalf("decoded %d, want 4 (dst-capped)", n)
	}
	if dst[0] != 1 || dst[3] != 4 {
		t.Fatalf("decoded values wrong: %v", dst)
	}
}

func TestAppendFloat32sEmpty(t *testing.T) {
	if got := AppendFloat32s(nil, nil); got != nil {
		t.Fatalf("AppendFloat32s(nil, nil) = %v", got)
	}
}
