package adr

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/render"
	"datacutter/internal/sim"
)

// SimOptions configures a simulated ADR run on a modeled cluster.
type SimOptions struct {
	W     *isoviz.Workload
	Dist  *dataset.Distribution // static chunk-to-node partition
	Costs isoviz.CostModel
	Hosts []string // participating nodes; Hosts[0] also merges
	Views []isoviz.View
	// PrefetchDepth is the number of outstanding asynchronous chunk reads
	// per node (ADR keeps "an optimal number of active asynchronous disk
	// I/O calls"); default 4.
	PrefetchDepth int
	// Chunks restricts processing to a chunk subset (a range query);
	// nil processes the whole dataset.
	Chunks []int
}

// allowedSet returns the query filter, or nil for "all chunks".
func (o *SimOptions) allowedSet() map[int]bool {
	if o.Chunks == nil {
		return nil
	}
	m := make(map[int]bool, len(o.Chunks))
	for _, c := range o.Chunks {
		m[c] = true
	}
	return m
}

// SimResult reports a simulated ADR run.
type SimResult struct {
	TotalSeconds  float64
	PerUOWSeconds []float64
	BytesMoved    int64
}

// RunSim executes the ADR baseline in virtual time: every node overlaps
// local disk I/O with extract+raster compute into a private z-buffer
// (z-buffer algorithm — the accumulator model ADR supports; paper §4.2),
// then ships the full accumulator to the merge node. Static partitioning
// means a loaded or slow node delays the whole timestep.
func RunSim(cl *cluster.Cluster, opts SimOptions) (*SimResult, error) {
	if len(opts.Hosts) == 0 {
		return nil, fmt.Errorf("adr: no hosts")
	}
	for _, h := range opts.Hosts {
		if cl.Host(h) == nil {
			return nil, fmt.Errorf("adr: unknown host %q", h)
		}
	}
	depth := opts.PrefetchDepth
	if depth < 1 {
		depth = 4
	}
	k := cl.Kernel()
	res := &SimResult{}
	bytes0 := cl.BytesMoved
	start := k.Now()

	for _, view := range opts.Views {
		t0 := k.Now()
		if err := runSimUOW(cl, opts, view, depth); err != nil {
			return nil, err
		}
		res.PerUOWSeconds = append(res.PerUOWSeconds, float64(k.Now()-t0))
	}
	res.TotalSeconds = float64(k.Now() - start)
	res.BytesMoved = cl.BytesMoved - bytes0
	return res, nil
}

func runSimUOW(cl *cluster.Cluster, opts SimOptions, view isoviz.View, depth int) error {
	k := cl.Kernel()
	merge := opts.Hosts[0]
	pxPerTri := opts.Costs.PxPerTri(view, opts.W.TotalTris(view.Timestep))
	frameBytes := view.Width * view.Height * render.ZPixelBytes

	mergeQ := sim.NewChan[int](k, "adr-merge", len(opts.Hosts))
	nodesLeft := len(opts.Hosts)

	allowed := opts.allowedSet()
	for _, host := range opts.Hosts {
		host := host
		chunks := dataset.ChunksOnHost(opts.W.DS, opts.Dist, host)
		if allowed != nil {
			var sel []int
			for _, c := range chunks {
				if allowed[c] {
					sel = append(sel, c)
				}
			}
			chunks = sel
		}
		readq := sim.NewChan[isoviz.ChunkStats](k, "adr-read@"+host, depth)

		// Asynchronous I/O: a reader keeps `depth` chunk reads in flight.
		k.Spawn("adr-io@"+host, func(p *sim.Proc) {
			h := cl.Host(host)
			for _, c := range chunks {
				st := opts.W.Stats(c, view.Timestep)
				h.ReadDisk(p, dataset.DiskOfChunk(opts.W.DS, opts.Dist, c).Disk, st.Bytes)
				readq.Send(p, st)
			}
			readq.Close()
		})

		// The accumulator loop: extract + raster each chunk into the local
		// z-buffer, then ship the accumulator to the merge node.
		k.Spawn("adr-cpu@"+host, func(p *sim.Proc) {
			h := cl.Host(host)
			for {
				st, ok := readq.Recv(p)
				if !ok {
					break
				}
				work := float64(st.Bytes)*opts.Costs.ReadCPUPerByte +
					opts.Costs.ExtractSeconds(st.Cells, st.Tris) +
					opts.Costs.RasterSeconds(st.Tris, pxPerTri)
				h.CPU.Compute(p, work)
			}
			if host != merge {
				cl.Transfer(p, host, merge, frameBytes)
			}
			mergeQ.Send(p, view.Width*view.Height)
		})
	}

	// The merge node combines partial accumulators as they arrive, then
	// generates the final client image.
	var mergeErr error
	k.Spawn("adr-merge@"+merge, func(p *sim.Proc) {
		h := cl.Host(merge)
		for nodesLeft > 0 {
			px, ok := mergeQ.Recv(p)
			if !ok {
				mergeErr = fmt.Errorf("adr: merge queue closed early")
				return
			}
			nodesLeft--
			h.CPU.Compute(p, float64(px)*opts.Costs.MergePixelSeconds)
		}
		h.CPU.Compute(p, float64(view.Width)*float64(view.Height)*opts.Costs.ImageGenSeconds)
	})

	if err := k.Run(); err != nil {
		return err
	}
	return mergeErr
}
