package adr

import (
	"fmt"
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/leakcheck"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
	"datacutter/internal/sim"
	"datacutter/internal/volume"
)

func testSrc() *isoviz.FieldSource {
	return isoviz.NewFieldSource(volume.NewPlumeField(17, 4), 33, 33, 33, 3, 3, 3)
}

func testView() isoviz.View {
	return isoviz.View{Timestep: 1, Iso: 0.35, Width: 96, Height: 96, Camera: geom.DefaultCamera()}
}

func TestRunLocalMatchesDirectRender(t *testing.T) {
	leakcheck.Check(t)
	src := testSrc()
	view := testView()
	want := render.NewZBuffer(view.Width, view.Height)
	rr := render.NewRaster(view.Camera, view.Width, view.Height)
	for i := 0; i < src.Chunks(); i++ {
		v, err := src.Load(i, view.Timestep)
		if err != nil {
			t.Fatal(err)
		}
		mcubes.Walk(v, view.Iso, func(tr geom.Triangle) { rr.Draw(tr, want) })
	}
	for _, workers := range []int{1, 2, 5} {
		got, err := RunLocal(LocalOptions{Source: src, View: view, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("ADR image differs with %d workers", workers)
		}
	}
}

func TestRunLocalMatchesPipeline(t *testing.T) {
	leakcheck.Check(t)
	// The baseline and the component-based implementation must agree on
	// output (they compute the same rendering).
	src := testSrc()
	view := testView()
	adrImg, err := RunLocal(LocalOptions{Source: src, View: view, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	spec := isoviz.PipelineSpec{Config: isoviz.ReadExtract, Alg: isoviz.ActivePixel, Source: src, Assign: isoviz.AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 2).Place("Ra", "h0", 2).Place("M", "h0", 1)
	r, err := core.NewRunner(spec.Build(), pl, core.Options{Policy: core.DemandDriven(), UOWs: []any{view}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := isoviz.MergeResult(r.Instances("M"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Result().Equal(adrImg) {
		t.Fatal("ADR and DataCutter render different images")
	}
}

func TestRunLocalPropagatesErrors(t *testing.T) {
	leakcheck.Check(t)
	src := testSrc()
	bad := &failingSource{FieldSource: src}
	view := testView()
	if _, err := RunLocal(LocalOptions{Source: bad, View: view, Workers: 2}); err == nil {
		t.Fatal("expected error")
	}
}

type failingSource struct{ *isoviz.FieldSource }

func (f *failingSource) Load(i, ts int) (*volume.Volume, error) {
	if i == 2 {
		return nil, fmt.Errorf("bad sector")
	}
	return f.FieldSource.Load(i, ts)
}

func simCluster(n int) (*cluster.Cluster, []string) {
	k := sim.NewKernel()
	cl := cluster.New(k)
	var hosts []string
	for i := 0; i < n; i++ {
		h := cl.AddHost(cluster.HostSpec{
			Name: fmt.Sprintf("n%d", i), Cores: 1, Speed: 1,
			NICBandwidth: 50e6, NICOverhead: 20e-6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.005, Bandwidth: 30e6}},
		})
		hosts = append(hosts, h.Spec.Name)
	}
	return cl, hosts
}

func simWorkload(t *testing.T) *isoviz.Workload {
	t.Helper()
	ds, err := dataset.New(dataset.Meta{
		GX: 65, GY: 65, GZ: 65, BX: 4, BY: 4, BZ: 4,
		Timesteps: 2, Files: 16, Seed: 23, Plumes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return isoviz.NewWorkload(ds, 0.35)
}

func TestRunSimCompletes(t *testing.T) {
	leakcheck.Check(t)
	cl, hosts := simCluster(4)
	w := simWorkload(t)
	dist := dataset.DistributeEven(w.DS.Files, hosts, 1)
	res, err := RunSim(cl, SimOptions{
		W: w, Dist: dist, Costs: isoviz.DefaultCosts(), Hosts: hosts,
		Views: []isoviz.View{isoviz.DefaultView(0.35)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 || res.BytesMoved <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if len(res.PerUOWSeconds) != 1 {
		t.Fatalf("per-UOW: %v", res.PerUOWSeconds)
	}
}

func TestRunSimScalesWithNodes(t *testing.T) {
	leakcheck.Check(t)
	w := simWorkload(t)
	// A small output frame keeps the serial merge phase negligible so this
	// measures compute scaling (at large frames the merge node bounds
	// speedup — the effect the paper reports as the merge bottleneck).
	view := isoviz.DefaultView(0.35)
	view.Width, view.Height = 128, 128
	mk := func(n int) float64 {
		cl, hosts := simCluster(n)
		dist := dataset.DistributeEven(w.DS.Files, hosts, 1)
		res, err := RunSim(cl, SimOptions{
			W: w, Dist: dist, Costs: isoviz.DefaultCosts(), Hosts: hosts,
			Views: []isoviz.View{view},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSeconds
	}
	t1, t4 := mk(1), mk(4)
	if t4 >= t1 {
		t.Fatalf("4 nodes (%v) not faster than 1 (%v)", t4, t1)
	}
	if t4 > t1/2 {
		t.Fatalf("poor scaling: 1 node %v, 4 nodes %v", t1, t4)
	}
}

// The paper's central heterogeneity result: ADR degrades linearly with
// background jobs on some nodes (static partition cannot shed load), and
// degrades worse than a demand-driven DataCutter configuration.
func TestRunSimDegradesWithBackgroundLoad(t *testing.T) {
	leakcheck.Check(t)
	w := simWorkload(t)
	mk := func(bg int) float64 {
		cl, hosts := simCluster(4)
		for i := 2; i < 4; i++ {
			cl.Host(hosts[i]).SetBackgroundJobs(bg)
		}
		dist := dataset.DistributeEven(w.DS.Files, hosts, 1)
		res, err := RunSim(cl, SimOptions{
			W: w, Dist: dist, Costs: isoviz.DefaultCosts(), Hosts: hosts,
			Views: []isoviz.View{isoviz.DefaultView(0.35)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSeconds
	}
	t0, t4, t16 := mk(0), mk(4), mk(16)
	if !(t0 < t4 && t4 < t16) {
		t.Fatalf("ADR should degrade with load: %v %v %v", t0, t4, t16)
	}
	if t16 < 3*t0 {
		t.Fatalf("16 bg jobs should hurt a static partition badly: %v vs %v", t16, t0)
	}
}

func TestRunSimValidation(t *testing.T) {
	leakcheck.Check(t)
	cl, _ := simCluster(2)
	w := simWorkload(t)
	if _, err := RunSim(cl, SimOptions{W: w, Hosts: nil}); err == nil {
		t.Fatal("no hosts accepted")
	}
	if _, err := RunSim(cl, SimOptions{W: w, Hosts: []string{"ghost"}}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestRunSimMultiUOW(t *testing.T) {
	leakcheck.Check(t)
	cl, hosts := simCluster(2)
	w := simWorkload(t)
	dist := dataset.DistributeEven(w.DS.Files, hosts, 1)
	v0, v1 := isoviz.DefaultView(0.35), isoviz.DefaultView(0.35)
	v1.Timestep = 1
	res, err := RunSim(cl, SimOptions{
		W: w, Dist: dist, Costs: isoviz.DefaultCosts(), Hosts: hosts,
		Views: []isoviz.View{v0, v1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUOWSeconds) != 2 {
		t.Fatalf("per-UOW: %v", res.PerUOWSeconds)
	}
}
