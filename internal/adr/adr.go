// Package adr implements the comparison baseline: an Active Data
// Repository-style SPMD runtime (Chang et al. [12], Ferreira et al. [15]).
//
// ADR's model, as the paper characterizes it: datasets are statically
// partitioned across the nodes of a homogeneous parallel machine; every
// node runs the identical accumulator loop (read local chunks, aggregate
// into a local accumulator — here a z-buffer) with carefully overlapped
// asynchronous I/O and computation; partial accumulators are combined at
// the end. Its strength is low overhead on dedicated homogeneous nodes;
// its weakness is that static partitioning cannot shed load when nodes are
// heterogeneous or externally loaded (paper §4.2).
//
// RunLocal is a real in-process implementation operating on actual data
// (used to cross-validate images against the filter pipelines); RunSim is
// the simulated implementation used by the paper-scale experiments.
package adr

import (
	"fmt"
	"runtime"
	"sync"

	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
)

// LocalOptions configures an in-process SPMD run.
type LocalOptions struct {
	Source  isoviz.ChunkSource
	View    isoviz.View
	Workers int // SPMD width; defaults to GOMAXPROCS
}

// RunLocal renders a view with the ADR model on real data: chunks are
// statically partitioned across workers, each worker accumulates into a
// private z-buffer, and the partial buffers merge into the final image.
func RunLocal(opts LocalOptions) (*render.ZBuffer, error) {
	w := opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	n := opts.Source.Chunks()
	partials := make([]*render.ZBuffer, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			z := render.NewZBuffer(opts.View.Width, opts.View.Height)
			rr := render.NewRaster(opts.View.Camera, opts.View.Width, opts.View.Height)
			// Static partition: worker i owns chunks i, i+w, i+2w, ...
			for c := i; c < n; c += w {
				v, err := opts.Source.Load(c, opts.View.Timestep)
				if err != nil {
					errs[i] = fmt.Errorf("adr: chunk %d: %w", c, err)
					return
				}
				mcubes.Walk(v, opts.View.Iso, func(t geom.Triangle) { rr.Draw(t, z) })
			}
			partials[i] = z
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := render.NewZBuffer(opts.View.Width, opts.View.Height)
	for _, p := range partials {
		out.MergeFrom(p)
	}
	return out, nil
}
