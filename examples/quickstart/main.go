// Quickstart: build the isosurface rendering application as a DataCutter
// filter graph, run it on the real (goroutine) engine with transparently
// replicated raster filters, and write the merged image to a PNG.
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"

	"datacutter/internal/core"
	"datacutter/internal/isoviz"
	"datacutter/internal/volume"
)

func main() {
	// 1. A data source: a synthetic reactive-transport field sampled on a
	//    97^3 grid, partitioned into 64 chunks (stand-in for a stored
	//    dataset; see cmd/datagen for on-disk datasets).
	field := volume.NewPlumeField(42, 4)
	source := isoviz.NewFieldSource(field, 97, 97, 97, 4, 4, 4)

	// 2. The processing structure: read+extract (RE) -> raster (Ra) ->
	//    merge (M), the paper's best-performing decomposition, using the
	//    active-pixel algorithm so rasterization and merging pipeline.
	spec := isoviz.PipelineSpec{
		Config: isoviz.ReadExtract,
		Alg:    isoviz.ActivePixel,
		Source: source,
		Assign: isoviz.AssignByCopy(source.Chunks()),
	}
	graph := spec.Build()

	// 3. Placement: transparent copies. Two RE copies and four Ra copies
	//    share the work; the runtime keeps the single-stream illusion and
	//    the demand-driven policy routes buffers to whichever copy keeps
	//    up best.
	placement := core.NewPlacement().
		Place("RE", "node0", 2).
		Place("Ra", "node0", 4).
		Place("M", "node0", 1)

	// 4. One unit of work: render timestep 3 at isovalue 0.5 into 512^2.
	view := isoviz.View{
		Timestep: 3, Iso: 0.5,
		Width: 512, Height: 512,
		Camera: isoviz.DefaultView(0).Camera,
	}

	runner, err := core.NewRunner(graph, placement, core.Options{
		Policy: core.DemandDriven(),
		UOWs:   []any{view},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 5. The merge filter holds the final image.
	merge, err := isoviz.MergeResult(runner.Instances("M"))
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("quickstart.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, merge.Result().Image()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("wrote quickstart.png")
	for _, name := range stats.StreamNames() {
		s := stats.Streams[name]
		fmt.Printf("stream %-10s: %4d buffers, %7.2f MB\n", name, s.Buffers, float64(s.Bytes)/1e6)
	}
}
