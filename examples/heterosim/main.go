// Heterosim: the paper's headline heterogeneity result (Figure 5) in
// miniature, on the simulated cluster. Four Rogue + four Blue nodes render
// a dataset while background jobs load the Rogue nodes; the ADR-style
// static SPMD baseline degrades linearly while the DataCutter pipeline
// under demand-driven scheduling sheds work to the dedicated Blue nodes.
package main

import (
	"fmt"

	"datacutter/internal/adr"
	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

func buildCluster(bg int) (*cluster.Cluster, []string, []string) {
	cl := cluster.New(sim.NewKernel())
	rogues := cluster.AddRogue(cl, 4)
	blues := cluster.AddBlue(cl, 4)
	for _, r := range rogues {
		cl.Host(r).SetBackgroundJobs(bg)
	}
	return cl, rogues, blues
}

func main() {
	ds, err := dataset.New(dataset.Meta{
		GX: 129, GY: 129, GZ: 97, BX: 8, BY: 8, BZ: 6,
		Timesteps: 3, Files: 64, Seed: 2002, Plumes: 5,
	})
	if err != nil {
		panic(err)
	}
	w := isoviz.NewWorkload(ds, 1.0)
	view := isoviz.View{Timestep: 0, Iso: 1.0, Width: 2048, Height: 2048, Camera: isoviz.DefaultView(0).Camera}

	fmt.Printf("%-8s %-12s %-14s %-14s %s\n", "bg jobs", "ADR (s)", "DC DD (s)", "DC/ADR", "buffers rogue:blue under DD")
	for _, bg := range []int{0, 1, 4, 16} {
		// ADR baseline: static partition over all eight nodes.
		cl, rogues, blues := buildCluster(bg)
		hosts := append(append([]string{}, rogues...), blues...)
		dist := dataset.DistributeEven(ds.Files, hosts, 2)
		res, err := adr.RunSim(cl, adr.SimOptions{
			W: w, Dist: dist, Costs: isoviz.DefaultCosts(),
			Hosts: hosts, Views: []isoviz.View{view},
		})
		if err != nil {
			panic(err)
		}

		// DataCutter RE–Ra–M under demand-driven scheduling.
		cl2, rogues2, blues2 := buildCluster(bg)
		hosts2 := append(append([]string{}, rogues2...), blues2...)
		dist2 := dataset.DistributeEven(ds.Files, hosts2, 2)
		pl := core.NewPlacement()
		for _, h := range hosts2 {
			pl.Place("RE", h, 1).Place("Ra", h, 1)
		}
		pl.Place("M", blues2[0], 1)
		spec := isoviz.ModelSpec{
			Config: isoviz.ReadExtract, Alg: isoviz.ActivePixel,
			W: w, Dist: dist2,
			Assign: isoviz.AssignByDistribution(ds, dist2, pl, "RE"),
			Costs:  isoviz.DefaultCosts(),
		}
		runner, err := simrt.NewRunner(spec.Build(), pl, cl2, simrt.Options{
			Policy: core.DemandDriven(), UOWs: []any{view}, BufferBytes: 16 << 10,
		})
		if err != nil {
			panic(err)
		}
		st, err := runner.Run()
		if err != nil {
			panic(err)
		}
		var rogueBufs, blueBufs int64
		for host, n := range st.Streams[isoviz.StreamTriangles].PerTargetHost {
			if cl2.Host(host).Spec.NICBandwidth < 20e6 {
				rogueBufs += n
			} else {
				blueBufs += n
			}
		}
		dc := st.WallSeconds
		fmt.Printf("%-8d %-12.2f %-14.2f %-14.2f %d:%d\n",
			bg, res.TotalSeconds, dc, dc/res.TotalSeconds, rogueBufs, blueBufs)
	}
	fmt.Println("\nexpected: ADR time grows with background load; DataCutter stays nearly")
	fmt.Println("flat as demand-driven scheduling shifts buffers from Rogue to Blue.")
}
