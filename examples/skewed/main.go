// Skewed: the paper's skewed-data-distribution study (Figure 7) in
// miniature. Files migrate from the Blue nodes to the Rogue nodes; the
// fully combined RERa–M configuration (SPMD-like) is gated by the node with
// the most data, while decoupled configurations let data read on slow nodes
// be processed elsewhere — especially under demand-driven scheduling.
package main

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

func main() {
	ds, err := dataset.New(dataset.Meta{
		GX: 129, GY: 129, GZ: 97, BX: 8, BY: 8, BZ: 6,
		Timesteps: 2, Files: 64, Seed: 7, Plumes: 5,
	})
	if err != nil {
		panic(err)
	}
	w := isoviz.NewWorkload(ds, 1.0)
	view := isoviz.View{Timestep: 0, Iso: 1.0, Width: 512, Height: 512, Camera: isoviz.DefaultView(0).Camera}

	fmt.Printf("%-10s %-10s %-8s %-8s %-8s\n", "skew", "config", "RR", "WRR", "DD")
	for _, skew := range []int{0, 25, 50, 75} {
		for _, cfg := range []isoviz.Config{isoviz.CombinedAll, isoviz.ReadExtract} {
			row := fmt.Sprintf("%-10s %-10s", fmt.Sprintf("%d%%", skew), cfg)
			for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven()} {
				cl := cluster.New(sim.NewKernel())
				blues := cluster.AddBlue(cl, 2)
				rogues := cluster.AddRogue(cl, 2)
				hosts := append(append([]string{}, blues...), rogues...)
				dist := dataset.DistributeEven(ds.Files, hosts, 2)
				if skew > 0 {
					dist.Skew(blues, rogues, skew, 2)
				}
				pl := core.NewPlacement()
				src := cfg.SourceFilter()
				for _, h := range hosts {
					pl.Place(src, h, 1)
					if wk := cfg.WorkerFilter(); wk != "" {
						pl.Place(wk, h, 1)
					}
				}
				pl.Place("M", blues[0], 1)
				spec := isoviz.ModelSpec{
					Config: cfg, Alg: isoviz.ActivePixel, W: w, Dist: dist,
					Assign: isoviz.AssignByDistribution(ds, dist, pl, src),
					Costs:  isoviz.DefaultCosts(),
				}
				runner, err := simrt.NewRunner(spec.Build(), pl, cl, simrt.Options{
					Policy: pol, UOWs: []any{view}, BufferBytes: 64 << 10,
				})
				if err != nil {
					panic(err)
				}
				st, err := runner.Run()
				if err != nil {
					panic(err)
				}
				row += fmt.Sprintf(" %-8.2f", st.WallSeconds)
			}
			fmt.Println(row)
		}
	}
	fmt.Println("\nexpected: RERa-M degrades steadily with skew; RE-Ra-M stays flat,")
	fmt.Println("and demand-driven scheduling gives the best times under skew.")
}
