// Policies: compare the three writer policies (RR, WRR, DD) on the real
// engine under induced load imbalance. A worker filter is transparently
// copied onto a "fast" and a "slow" host (the slow copy sleeps per buffer,
// standing in for a loaded machine); demand-driven scheduling shifts
// buffers to the fast copy set, the oblivious policies do not.
package main

import (
	"fmt"
	"time"

	"datacutter/internal/core"
)

// producer emits n buffers.
type producer struct {
	core.BaseFilter
	n int
}

func (p *producer) Process(ctx core.Ctx) error {
	for i := 0; i < p.n; i++ {
		if err := ctx.Write("work", core.Buffer{Payload: i, Size: 1024}); err != nil {
			return err
		}
	}
	return nil
}

// worker forwards buffers; copies on the host named "slow" sleep per
// buffer, modeling a loaded machine without hogging a test CPU.
type worker struct {
	core.BaseFilter
}

func (w *worker) Process(ctx core.Ctx) error {
	slow := ctx.Host() == "slow"
	for {
		b, ok := ctx.Read("work")
		if !ok {
			return nil
		}
		if slow {
			time.Sleep(3 * time.Millisecond)
		}
		if err := ctx.Write("done", b); err != nil {
			return err
		}
	}
}

// sink drains results.
type sink struct {
	core.BaseFilter
	seen int
}

func (s *sink) Process(ctx core.Ctx) error {
	for {
		if _, ok := ctx.Read("done"); !ok {
			return nil
		}
		s.seen++
	}
}

func main() {
	const buffers = 400
	fmt.Printf("%-5s %-9s %-9s %-9s %s\n", "pol", "fast", "slow", "elapsed", "(buffers per copy set)")
	for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven()} {
		g := core.NewGraph()
		g.AddFilter("P", func() core.Filter { return &producer{n: buffers} })
		g.AddFilter("W", func() core.Filter { return &worker{} })
		g.AddFilter("S", func() core.Filter { return &sink{} })
		g.Connect("P", "W", "work")
		g.Connect("W", "S", "done")

		// Two worker copies on the fast host, one on the slow host: WRR
		// weights 2:1, DD adapts by demand.
		pl := core.NewPlacement().
			Place("P", "fast", 1).
			Place("W", "fast", 2).
			Place("W", "slow", 1).
			Place("S", "fast", 1)

		r, err := core.NewRunner(g, pl, core.Options{Policy: pol})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		st, err := r.Run()
		if err != nil {
			panic(err)
		}
		per := st.Streams["work"].PerTargetHost
		fmt.Printf("%-5s %-9d %-9d %-9s\n", pol.Name(), per["fast"], per["slow"], time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("\nexpected: RR splits 50/50, WRR 2:1 by copy count, DD sends the")
	fmt.Println("slow host only what it can actually consume and finishes first.")
}
