// Distributed: run the isosurface pipeline across three worker processes
// connected by TCP — the original DataCutter deployment model. This example
// starts the workers in-process for a self-contained demo; in a real
// deployment each would be a `dcworker` process on its own machine.
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"

	"datacutter/internal/dist"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
)

func main() {
	// 1. Three workers, as if on three hosts.
	addrs := map[string]string{}
	workers := map[string]*dist.Worker{}
	for _, host := range []string{"data1", "data2", "viz"} {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		addrs[host] = w.Addr()
		workers[host] = w
	}

	// 2. The pipeline spec: reconstructable worker-side from parameters.
	params := isoviz.FieldREParams{Seed: 42, Plumes: 4, GX: 65, GY: 65, GZ: 65, BX: 4, BY: 4, BZ: 4}
	spec, err := isoviz.DistGraphField(params, isoviz.ActivePixel)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Placement: read+extract on the data hosts, raster copies
	//    everywhere, merge on the visualization host. Demand-driven
	//    scheduling balances the raster load with real TCP acknowledgments.
	placement := []dist.PlacementEntry{
		{Filter: "RE", Host: "data1", Copies: 1},
		{Filter: "RE", Host: "data2", Copies: 1},
		{Filter: "Ra", Host: "data1", Copies: 1},
		{Filter: "Ra", Host: "data2", Copies: 1},
		{Filter: "Ra", Host: "viz", Copies: 2},
		{Filter: "M", Host: "viz", Copies: 1},
	}

	view := isoviz.View{Timestep: 2, Iso: 0.5, Width: 512, Height: 512, Camera: geom.DefaultCamera()}
	stats, err := dist.Run(addrs, spec, placement, dist.Options{Policy: "DD"}, []any{view})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The merge filter on the viz worker holds the final image.
	m, err := isoviz.MergeResult(workers["viz"].Instances("M"))
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("distributed.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, m.Result().Image()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("wrote distributed.png")
	for _, s := range []string{isoviz.StreamTriangles, isoviz.StreamPixels} {
		ss := stats.Streams[s]
		fmt.Printf("stream %-10s %5d buffers %8.2f MB %5d acks, per host: %v\n",
			s, ss.Buffers, float64(ss.Bytes)/1e6, ss.Acks, ss.PerTargetHost)
	}
}
