module datacutter

go 1.22
