// Command datagen creates an on-disk chunked dataset: a synthetic
// reactive-transport field sampled onto a rectilinear grid, partitioned
// into chunks, and declustered across data files along a 3-D Hilbert curve
// (the storage layout the paper's datasets used).
//
// Usage:
//
//	datagen -dir /data/plume -grid 129x129x97 -chunks 8x8x6 -timesteps 10 -files 64
package main

import (
	"flag"
	"fmt"
	"os"

	"datacutter/internal/dataset"
)

func main() {
	var (
		dir       = flag.String("dir", "", "output directory (required)")
		grid      = flag.String("grid", "129x129x97", "grid samples as NXxNYxNZ")
		chunks    = flag.String("chunks", "8x8x6", "chunk grid as BXxBYxBZ")
		timesteps = flag.Int("timesteps", 10, "stored timesteps")
		files     = flag.Int("files", 64, "data files to decluster across")
		seed      = flag.Int64("seed", 2002, "field seed")
		plumes    = flag.Int("plumes", 5, "chemical plumes in the field")
		skewed    = flag.Bool("skewed", false, "use the spatially skewed field variant")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "datagen: -dir is required")
		os.Exit(2)
	}
	m := dataset.Meta{
		Timesteps: *timesteps, Files: *files,
		Seed: *seed, Plumes: *plumes, Skewed: *skewed,
	}
	if _, err := fmt.Sscanf(*grid, "%dx%dx%d", &m.GX, &m.GY, &m.GZ); err != nil {
		fatal(fmt.Errorf("bad -grid %q: %w", *grid, err))
	}
	if _, err := fmt.Sscanf(*chunks, "%dx%dx%d", &m.BX, &m.BY, &m.BZ); err != nil {
		fatal(fmt.Errorf("bad -chunks %q: %w", *chunks, err))
	}
	st, err := dataset.Create(*dir, m)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	ds := st.DS
	fmt.Printf("created %s: %d chunks (%d samples each on average) x %d timesteps in %d files, %.1f MB/timestep\n",
		*dir, ds.Chunks(), ds.Block(0).Samples(), m.Timesteps, m.Files,
		float64(ds.TotalBytes())/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
