// Command datagen creates an on-disk chunked dataset: a synthetic
// reactive-transport field sampled onto a rectilinear grid, partitioned
// into chunks, and declustered across data files along a 3-D Hilbert curve
// (the storage layout the paper's datasets used).
//
// Creation also writes the chunk-summary sidecar (summary.idx) that powers
// predicate pushdown; -no-index suppresses it, and -reindex retrofits the
// sidecar onto an existing dataset by re-reading every chunk.
//
// Usage:
//
//	datagen -dir /data/plume -grid 129x129x97 -chunks 8x8x6 -timesteps 10 -files 64
//	datagen -dir /data/plume -reindex
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"datacutter/internal/dataset"
)

func main() {
	var (
		dir       = flag.String("dir", "", "output directory (required)")
		grid      = flag.String("grid", "129x129x97", "grid samples as NXxNYxNZ")
		chunks    = flag.String("chunks", "8x8x6", "chunk grid as BXxBYxBZ")
		timesteps = flag.Int("timesteps", 10, "stored timesteps")
		files     = flag.Int("files", 64, "data files to decluster across")
		seed      = flag.Int64("seed", 2002, "field seed")
		plumes    = flag.Int("plumes", 5, "chemical plumes in the field")
		skewed    = flag.Bool("skewed", false, "use the spatially skewed field variant")
		reindex   = flag.Bool("reindex", false, "rebuild the summary sidecar of an existing dataset (ignores generation flags)")
		noIndex   = flag.Bool("no-index", false, "do not write the summary sidecar (disables pushdown pruning)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "datagen: -dir is required")
		os.Exit(2)
	}
	if *reindex {
		if err := reindexStore(*dir); err != nil {
			fatal(err)
		}
		return
	}
	m := dataset.Meta{
		Timesteps: *timesteps, Files: *files,
		Seed: *seed, Plumes: *plumes, Skewed: *skewed,
	}
	if _, err := fmt.Sscanf(*grid, "%dx%dx%d", &m.GX, &m.GY, &m.GZ); err != nil {
		fatal(fmt.Errorf("bad -grid %q: %w", *grid, err))
	}
	if _, err := fmt.Sscanf(*chunks, "%dx%dx%d", &m.BX, &m.BY, &m.BZ); err != nil {
		fatal(fmt.Errorf("bad -chunks %q: %w", *chunks, err))
	}
	st, err := dataset.Create(*dir, m)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	if *noIndex {
		if err := os.Remove(filepath.Join(*dir, dataset.SummaryFile)); err != nil {
			fatal(err)
		}
	}
	ds := st.DS
	idxNote := "with summary sidecar"
	if *noIndex {
		idxNote = "without summary sidecar"
	}
	fmt.Printf("created %s: %d chunks (%d samples each on average) x %d timesteps in %d files, %.1f MB/timestep, %s\n",
		*dir, ds.Chunks(), ds.Block(0).Samples(), m.Timesteps, m.Files,
		float64(ds.TotalBytes())/1e6, idxNote)
}

// reindexStore rebuilds summary.idx for a dataset created before summaries
// existed (or with -no-index), reading every chunk once.
func reindexStore(dir string) error {
	st, err := dataset.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	ix, err := dataset.BuildSummaryIndex(st)
	if err != nil {
		return err
	}
	if err := dataset.WriteSummaryIndex(dir, ix); err != nil {
		return err
	}
	fmt.Printf("reindexed %s: %d chunk-timestep summaries (%d chunks x %d timesteps)\n",
		dir, len(ix.Entries), ix.Chunks, ix.Timesteps)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
