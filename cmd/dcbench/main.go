// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench -list
//	dcbench -exp fig4 -scale full
//	dcbench -all -scale quick
//
// Each experiment builds the corresponding simulated cluster, dataset, and
// filter configuration (see DESIGN.md §4) and prints paper-style rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"datacutter/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (table1..table5, fig4, fig5, fig7)")
		scale = flag.String("scale", "quick", "workload scale: quick | full")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "dcbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %.1fs real time]\n\n", id, time.Since(t0).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcbench:", err)
	os.Exit(1)
}
