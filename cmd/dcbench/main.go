// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench -list
//	dcbench -exp fig4 -scale full
//	dcbench -all -scale quick
//	dcbench -trace out.json            # trace a built-in demo pipeline
//	dcbench -exp table2 -trace out.json -metrics
//
// Each experiment builds the corresponding simulated cluster, dataset, and
// filter configuration (see DESIGN.md §4) and prints paper-style rows.
//
// With -trace, buffer-lifecycle events are exported in Chrome trace_event
// format: open the file at https://ui.perfetto.dev or chrome://tracing.
// With -metrics, the observability registry snapshot is printed as JSON
// after the run. If neither -exp, -all, nor -list is given, -trace runs a
// built-in quickstart-sized isosurface pipeline on the real engine so there
// is always something to trace.
//
// Data-path fast paths (DESIGN.md §14): -transport runs the same demo on
// the dist engine over two in-process workers — "tcp" over loopback
// sockets, "auto"/"ring" over zero-copy in-process rings; -dir points the
// demo at a datagen dataset, where -readahead prefetches chunks along the
// planned read order and -mmap memory-maps the store:
//
//	dcbench -transport ring -metrics
//	dcbench -dir /data/plume -readahead 4 -mmap -trace out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/dist"
	"datacutter/internal/exec"
	"datacutter/internal/experiments"
	"datacutter/internal/isoviz"
	"datacutter/internal/obs"
	"datacutter/internal/volume"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (table1..table5, fig4, fig5, fig7)")
		scale   = flag.String("scale", "quick", "workload scale: quick | full")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		trace   = flag.String("trace", "", "write Chrome trace_event JSON to this file")
		metrics = flag.Bool("metrics", false, "print the metrics registry snapshot after the run")
		policy  = flag.String("policy", "DD", "demo pipeline default writer policy: RR | WRR | DD | DD/<k>")
		streams = flag.String("stream-policy", "", "demo pipeline per-stream overrides, e.g. 'triangles=DD/8,pixels=WRR'")
		seed    = flag.Int64("seed", 42, "demo pipeline synthetic-field seed")

		transport = flag.String("transport", "", "run the demo on the dist engine over in-process workers with this peer data plane: tcp | auto | ring")
		dir       = flag.String("dir", "", "datagen dataset directory for the demo source (default: synthetic field)")
		readahead = flag.Int("readahead", 0, "chunks the demo prefetches ahead of the planned read order (with -dir)")
		mmapOn    = flag.Bool("mmap", false, "memory-map the demo dataset instead of pread (with -dir)")

		elasticOn       = flag.Bool("elastic", false, "run the elastic hot-spot scenario: a slow worker host, autoscale off vs on")
		elasticMin      = flag.Int("elastic-min", 1, "elastic scenario: copies per worker copy set at the start (controller floor)")
		elasticMax      = flag.Int("elastic-max", 4, "elastic scenario: controller ceiling per copy set")
		elasticInterval = flag.Duration("elastic-interval", 2*time.Millisecond, "elastic scenario: controller sampling interval")
		pushdownOn      = flag.Bool("pushdown", false, "run the pushdown scenario: sparse vs dense iso-values, predicate pruning off vs on")
		benchOut        = flag.String("bench-out", "", "scenario runs (-elastic, -pushdown): write the comparison report as JSON to this file")
	)
	flag.Parse()
	if (*readahead > 0 || *mmapOn) && *dir == "" {
		fatal(fmt.Errorf("-readahead/-mmap tune on-disk store reads; they need -dir"))
	}

	if *elasticOn {
		if err := runElasticScenario(*elasticMin, *elasticMax, *elasticInterval, *benchOut); err != nil {
			fatal(err)
		}
		return
	}
	if *pushdownOn {
		if err := runPushdownScenario(*benchOut); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	// Observability: build an observer when tracing or metering is on.
	var (
		o      *obs.Observer
		reg    *obs.Registry
		traceF *os.File
	)
	if *trace != "" || *metrics {
		var sink obs.Sink
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			traceF = f
			sink = obs.NewChromeTraceSink(f)
		}
		reg = obs.NewRegistry()
		o = obs.New(sink, reg)
	}
	finish := func() {
		if o != nil {
			if err := o.Flush(); err != nil {
				fatal(err)
			}
		}
		if traceF != nil {
			if err := traceF.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dcbench: wrote trace to %s (open at https://ui.perfetto.dev)\n", *trace)
		}
		if *metrics {
			fmt.Fprintln(os.Stderr, "dcbench: metrics snapshot:")
			reg.WriteJSON(os.Stdout)
			fmt.Println()
		}
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	case o != nil || *transport != "" || *dir != "":
		// No experiment selected: run the built-in demo pipeline — on the
		// dist engine over in-process workers when -transport is set, on
		// the core engine otherwise.
		demo := demoConfig{
			policy: *policy, streams: *streams, seed: *seed,
			dir: *dir, readahead: *readahead, mmap: *mmapOn,
		}
		var err error
		if *transport != "" {
			err = runDemoDist(o, reg, demo, *transport)
		} else {
			err = runDemo(o, demo)
		}
		if err != nil {
			fatal(err)
		}
		finish()
		return
	default:
		fmt.Fprintln(os.Stderr, "dcbench: need -exp <id>, -all, -list, -trace, -transport, or -dir")
		flag.Usage()
		os.Exit(2)
	}

	experiments.SetObserver(o)
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %.1fs real time]\n\n", id, time.Since(t0).Seconds())
	}
	finish()
}

// demoConfig carries the demo pipeline knobs shared by both engines.
type demoConfig struct {
	policy, streams string
	seed            int64
	dir             string // datagen dataset; "" = synthetic field
	readahead       int
	mmap            bool
}

// demoView is the unit of work both demo engines render.
func demoView(timestep int) isoviz.View {
	return isoviz.View{
		Timestep: timestep, Iso: 0.5,
		Width: 256, Height: 256,
		Camera: isoviz.DefaultView(0).Camera,
	}
}

// demoSource builds the demo chunk source: the 97^3 synthetic field, or a
// datagen store with the selected read fast paths (chunk readahead along
// the planned order, mmap reads). The returned timestep is one the source
// actually holds.
func demoSource(d demoConfig) (isoviz.ChunkSource, int, error) {
	if d.dir == "" {
		field := volume.NewPlumeField(d.seed, 4)
		return isoviz.NewFieldSource(field, 97, 97, 97, 4, 4, 4), 3, nil
	}
	st, err := dataset.Open(d.dir)
	if err != nil {
		return nil, 0, err
	}
	if d.mmap {
		if err := st.EnableMmap(); err != nil {
			return nil, 0, err
		}
	}
	return &isoviz.StoreSource{St: st, Readahead: d.readahead}, 0, nil
}

func printDemoStats(prefix string, chunks int, stats *core.Stats) {
	if chunks >= 0 {
		fmt.Printf("%s: %d chunks through RE(2) -> Ra(4) -> M in %.2fs\n", prefix, chunks, stats.WallSeconds)
	} else {
		fmt.Printf("%s: RE(2) -> Ra(4) -> M in %.2fs\n", prefix, stats.WallSeconds)
	}
	for _, name := range stats.StreamNames() {
		s := stats.Streams[name]
		fmt.Printf("stream %-10s: %4d buffers, %7.2f MB\n", name, s.Buffers, float64(s.Bytes)/1e6)
	}
}

// runDemo executes a quickstart-sized isosurface pipeline on the real
// (goroutine) engine under the observer: the demo source through
// read+extract (2 copies) -> raster (4 copies) -> merge, with the writer
// policy selected by -policy / -stream-policy (demand driven by default)
// and the synthetic field derived from -seed. Every filter copy produces
// trace events.
func runDemo(o *obs.Observer, d demoConfig) error {
	perStream, err := exec.ParseStreamPolicies(d.streams)
	if err != nil {
		return err
	}
	cfg, err := exec.ParsePolicies(d.policy, perStream)
	if err != nil {
		return err
	}
	source, timestep, err := demoSource(d)
	if err != nil {
		return err
	}
	spec := isoviz.PipelineSpec{
		Config: isoviz.ReadExtract,
		Alg:    isoviz.ActivePixel,
		Source: source,
		Assign: isoviz.AssignByCopy(source.Chunks()),
	}
	placement := core.NewPlacement().
		Place("RE", "node0", 2).
		Place("Ra", "node0", 4).
		Place("M", "node0", 1)
	runner, err := core.NewRunner(spec.Build(), placement, core.Options{
		Policy:       cfg.Default,
		StreamPolicy: cfg.PerStream,
		UOWs:         []any{demoView(timestep)},
		Obs:          o,
	})
	if err != nil {
		return err
	}
	stats, err := runner.Run()
	if err != nil {
		return err
	}
	printDemoStats("demo pipeline", source.Chunks(), stats)
	return nil
}

// runDemoDist executes the same demo on the distributed engine: two
// in-process workers ("node0", "node1") joined over TCP loopback or — with
// -transport auto/ring — zero-copy in-process rings. The source is
// reconstructed worker-side from its params exactly as dcsubmit ships it,
// so -dir/-readahead/-mmap exercise the store fast paths per RE copy.
func runDemoDist(o *obs.Observer, reg *obs.Registry, d demoConfig, transport string) error {
	perStream, err := exec.ParseStreamPolicies(d.streams)
	if err != nil {
		return err
	}
	var re dist.FilterSpec
	timestep := 0
	if d.dir != "" {
		raw, err := json.Marshal(isoviz.StoreREParams{
			Dir: d.dir, Readahead: d.readahead, Mmap: d.mmap,
		})
		if err != nil {
			return err
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREStore, Params: raw}
	} else {
		raw, err := json.Marshal(isoviz.FieldREParams{
			Seed: d.seed, Plumes: 4,
			GX: 97, GY: 97, GZ: 97, BX: 4, BY: 4, BZ: 4,
		})
		if err != nil {
			return err
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREField, Params: raw}
		timestep = 3
	}
	spec := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			re,
			{Name: "Ra", Kind: isoviz.KindRasterAP},
			{Name: "M", Kind: isoviz.KindMerge},
		},
		Streams: []core.StreamSpec{
			{Name: isoviz.StreamTriangles, From: "RE", To: "Ra"},
			{Name: isoviz.StreamPixels, From: "Ra", To: "M"},
		},
	}
	addrs := make(map[string]string, 2)
	for _, host := range []string{"node0", "node1"} {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			return err
		}
		if o != nil {
			w.SetObserver(o)
		}
		go w.Serve()
		defer w.Close()
		addrs[host] = w.Addr()
	}
	placement := []dist.PlacementEntry{
		{Filter: "RE", Host: "node0", Copies: 1},
		{Filter: "RE", Host: "node1", Copies: 1},
		{Filter: "Ra", Host: "node0", Copies: 2},
		{Filter: "Ra", Host: "node1", Copies: 2},
		{Filter: "M", Host: "node1", Copies: 1},
	}
	opts := dist.Options{
		Policy:       d.policy,
		StreamPolicy: perStream,
		Transport:    transport,
	}
	stats, err := dist.RunObserved(addrs, spec, placement, opts, []any{demoView(timestep)}, o)
	if err != nil {
		return err
	}
	printDemoStats(fmt.Sprintf("demo pipeline (dist, transport=%s)", transport), -1, stats)
	if reg != nil {
		fmt.Printf("ring frames received: %d\n", reg.Counter("dist.rx.ring_frames").Value())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcbench:", err)
	os.Exit(1)
}
