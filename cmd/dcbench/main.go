// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench -list
//	dcbench -exp fig4 -scale full
//	dcbench -all -scale quick
//	dcbench -trace out.json            # trace a built-in demo pipeline
//	dcbench -exp table2 -trace out.json -metrics
//
// Each experiment builds the corresponding simulated cluster, dataset, and
// filter configuration (see DESIGN.md §4) and prints paper-style rows.
//
// With -trace, buffer-lifecycle events are exported in Chrome trace_event
// format: open the file at https://ui.perfetto.dev or chrome://tracing.
// With -metrics, the observability registry snapshot is printed as JSON
// after the run. If neither -exp, -all, nor -list is given, -trace runs a
// built-in quickstart-sized isosurface pipeline on the real engine so there
// is always something to trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/exec"
	"datacutter/internal/experiments"
	"datacutter/internal/isoviz"
	"datacutter/internal/obs"
	"datacutter/internal/volume"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (table1..table5, fig4, fig5, fig7)")
		scale   = flag.String("scale", "quick", "workload scale: quick | full")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		trace   = flag.String("trace", "", "write Chrome trace_event JSON to this file")
		metrics = flag.Bool("metrics", false, "print the metrics registry snapshot after the run")
		policy  = flag.String("policy", "DD", "demo pipeline default writer policy: RR | WRR | DD | DD/<k>")
		streams = flag.String("stream-policy", "", "demo pipeline per-stream overrides, e.g. 'triangles=DD/8,pixels=WRR'")
		seed    = flag.Int64("seed", 42, "demo pipeline synthetic-field seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	// Observability: build an observer when tracing or metering is on.
	var (
		o      *obs.Observer
		reg    *obs.Registry
		traceF *os.File
	)
	if *trace != "" || *metrics {
		var sink obs.Sink
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			traceF = f
			sink = obs.NewChromeTraceSink(f)
		}
		reg = obs.NewRegistry()
		o = obs.New(sink, reg)
	}
	finish := func() {
		if o != nil {
			if err := o.Flush(); err != nil {
				fatal(err)
			}
		}
		if traceF != nil {
			if err := traceF.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dcbench: wrote trace to %s (open at https://ui.perfetto.dev)\n", *trace)
		}
		if *metrics {
			fmt.Fprintln(os.Stderr, "dcbench: metrics snapshot:")
			reg.WriteJSON(os.Stdout)
			fmt.Println()
		}
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	case o != nil:
		// Tracing with no experiment: run the built-in demo pipeline.
		if err := runDemo(o, *policy, *streams, *seed); err != nil {
			fatal(err)
		}
		finish()
		return
	default:
		fmt.Fprintln(os.Stderr, "dcbench: need -exp <id>, -all, -list, or -trace")
		flag.Usage()
		os.Exit(2)
	}

	experiments.SetObserver(o)
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %.1fs real time]\n\n", id, time.Since(t0).Seconds())
	}
	finish()
}

// runDemo executes a quickstart-sized isosurface pipeline on the real
// (goroutine) engine under the observer: a 97^3 synthetic field through
// read+extract (2 copies) -> raster (4 copies) -> merge, with the writer
// policy selected by -policy / -stream-policy (demand driven by default)
// and the synthetic field derived from -seed. Every filter copy produces
// trace events.
func runDemo(o *obs.Observer, policy, streamSpec string, seed int64) error {
	perStream, err := exec.ParseStreamPolicies(streamSpec)
	if err != nil {
		return err
	}
	cfg, err := exec.ParsePolicies(policy, perStream)
	if err != nil {
		return err
	}
	field := volume.NewPlumeField(seed, 4)
	source := isoviz.NewFieldSource(field, 97, 97, 97, 4, 4, 4)
	spec := isoviz.PipelineSpec{
		Config: isoviz.ReadExtract,
		Alg:    isoviz.ActivePixel,
		Source: source,
		Assign: isoviz.AssignByCopy(source.Chunks()),
	}
	placement := core.NewPlacement().
		Place("RE", "node0", 2).
		Place("Ra", "node0", 4).
		Place("M", "node0", 1)
	view := isoviz.View{
		Timestep: 3, Iso: 0.5,
		Width: 256, Height: 256,
		Camera: isoviz.DefaultView(0).Camera,
	}
	runner, err := core.NewRunner(spec.Build(), placement, core.Options{
		Policy:       cfg.Default,
		StreamPolicy: cfg.PerStream,
		UOWs:         []any{view},
		Obs:          o,
	})
	if err != nil {
		return err
	}
	stats, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Printf("demo pipeline: %d chunks through RE(2) -> Ra(4) -> M in %.2fs\n",
		source.Chunks(), stats.WallSeconds)
	for _, name := range stats.StreamNames() {
		s := stats.Streams[name]
		fmt.Printf("stream %-10s: %4d buffers, %7.2f MB\n", name, s.Buffers, float64(s.Bytes)/1e6)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcbench:", err)
	os.Exit(1)
}
