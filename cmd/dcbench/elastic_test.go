package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The elastic hot-spot scenario must run both legs to completion (the sink
// delivery check inside runElasticLeg is the correctness oracle), keep the
// controller inside its copy budget, actually scale up under load, and
// write a well-formed JSON report. Wall-time speedup is reported but not
// asserted — CI machines are too noisy for a timing bound.
func TestElasticScenarioReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runElasticScenario(1, 4, 2*time.Millisecond, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep elasticReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.BudgetOK {
		t.Fatalf("budget violated: peak %d > budget %d", rep.AutoscaleOn.PeakCopies, rep.Budget)
	}
	if rep.AutoscaleOn.CopiesAdded < 1 {
		t.Fatalf("controller never scaled up: %+v", rep.AutoscaleOn)
	}
	if rep.AutoscaleOn.PeakCopies > rep.Budget {
		t.Fatalf("peak copies %d over budget %d", rep.AutoscaleOn.PeakCopies, rep.Budget)
	}
	if rep.AutoscaleOff.WallSeconds <= 0 || rep.AutoscaleOn.WallSeconds <= 0 {
		t.Fatalf("missing wall times: %+v", rep)
	}
}
