package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/exec"
	"datacutter/internal/isoviz"
	"datacutter/internal/obs"
	"datacutter/internal/render"
)

// The pushdown scenario (-pushdown): an "LHC skim"-shaped high-selectivity
// workload. A datagen dataset is rendered twice per iso-value — predicate
// pushdown off and on — through the fully split R-E-Ra-M pipeline, where
// the R->E voxels stream measures exactly the bytes the storage tier moved.
// A sparse iso-value (above almost every chunk's max) prunes most of the
// dataset; a dense mid-range one prunes little. The report (-bench-out,
// the BENCH_pr10.json artifact) records bytes-moved, pruning counters, wall
// time, and an image hash per leg: pruning must change the bytes, never the
// pixels.

const (
	pushdownGrid      = "129x129x97"
	pushdownChunks    = "8x8x6"
	pushdownTimesteps = 2
	pushdownFiles     = 8
	pushdownSeed      = 2002
	pushdownPlumes    = 5
	pushdownImageSize = 384

	// The plume field is background ~0.05 with Gaussian peaks around 0.6-1.1:
	// 0.15 cuts a large surface through every plume's skirt, 0.9 only tight
	// caps around the strongest peaks.
	pushdownDenseIso  = 0.15
	pushdownSparseIso = 0.9
)

// pushdownLeg is one run: a fixed iso with pushdown off or on.
type pushdownLeg struct {
	WallSeconds  float64 `json:"wall_seconds"`
	BytesMoved   int64   `json:"bytes_moved"` // R->E voxels stream
	ChunksPruned int64   `json:"chunks_pruned"`
	BytesSkipped int64   `json:"bytes_skipped"`
	ImageHash    string  `json:"image_hash"`
}

// pushdownCase compares the off/on legs at one iso-value.
type pushdownCase struct {
	Iso            float64     `json:"iso"`
	Off            pushdownLeg `json:"off"`
	On             pushdownLeg `json:"on"`
	BytesReduction float64     `json:"bytes_reduction"`
	Speedup        float64     `json:"speedup"`
	HashIdentical  bool        `json:"hash_identical"`
}

// pushdownReport is the scenario result, the shape BENCH_pr10.json carries.
type pushdownReport struct {
	Description string       `json:"description"`
	Grid        string       `json:"grid"`
	Chunks      string       `json:"chunk_grid"`
	TotalChunks int          `json:"total_chunks"`
	Timesteps   int          `json:"timesteps"`
	Sparse      pushdownCase `json:"sparse"`
	Dense       pushdownCase `json:"dense"`
}

// hashImage fingerprints a rendered frame (depth and color planes).
func hashImage(z *render.ZBuffer) string {
	h := fnv.New64a()
	var quad [4]byte
	for _, d := range z.Depth {
		binary.LittleEndian.PutUint32(quad[:], math.Float32bits(d))
		h.Write(quad[:])
	}
	for _, c := range z.Color {
		h.Write([]byte{c.R, c.G, c.B})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runPushdownLeg renders every stored timestep at iso through R-E-Ra-M on
// the core engine, one copy per filter so both legs are bit-deterministic.
func runPushdownLeg(dir string, iso float32, pushdown bool) (pushdownLeg, error) {
	st, err := dataset.Open(dir)
	if err != nil {
		return pushdownLeg{}, err
	}
	defer st.Close()
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)

	source := &isoviz.StoreSource{St: st}
	spec := isoviz.PipelineSpec{
		Config:   isoviz.FullPipeline,
		Alg:      isoviz.ZBuffer,
		Source:   source,
		Assign:   isoviz.AssignByCopy(source.Chunks()),
		Pushdown: pushdown,
	}
	placement := core.NewPlacement().
		Place("R", "node0", 1).
		Place("E", "node0", 1).
		Place("Ra", "node0", 1).
		Place("M", "node0", 1)
	var uows []any
	for t := 0; t < st.DS.Timesteps; t++ {
		v := isoviz.DefaultView(iso)
		v.Timestep = t
		v.Width, v.Height = pushdownImageSize, pushdownImageSize
		uows = append(uows, v)
	}
	cfg, err := exec.ParsePolicies("RR", nil)
	if err != nil {
		return pushdownLeg{}, err
	}
	runner, err := core.NewRunner(spec.Build(), placement, core.Options{
		Policy:       cfg.Default,
		StreamPolicy: cfg.PerStream,
		UOWs:         uows,
		Obs:          o,
	})
	if err != nil {
		return pushdownLeg{}, err
	}
	stats, err := runner.Run()
	if err != nil {
		return pushdownLeg{}, err
	}
	m, err := isoviz.MergeResult(runner.Instances("M"))
	if err != nil {
		return pushdownLeg{}, err
	}
	return pushdownLeg{
		WallSeconds:  stats.WallSeconds,
		BytesMoved:   stats.Streams[isoviz.StreamVoxels].Bytes,
		ChunksPruned: reg.Counter("dataset.chunks_pruned").Value(),
		BytesSkipped: reg.Counter("dataset.bytes_skipped").Value(),
		ImageHash:    hashImage(m.Result()),
	}, nil
}

// runPushdownCase runs the off/on pair at one iso-value.
func runPushdownCase(dir string, iso float32) (pushdownCase, error) {
	off, err := runPushdownLeg(dir, iso, false)
	if err != nil {
		return pushdownCase{}, fmt.Errorf("pushdown off: %w", err)
	}
	on, err := runPushdownLeg(dir, iso, true)
	if err != nil {
		return pushdownCase{}, fmt.Errorf("pushdown on: %w", err)
	}
	c := pushdownCase{
		Iso: float64(iso), Off: off, On: on,
		HashIdentical: off.ImageHash == on.ImageHash,
	}
	if on.BytesMoved > 0 {
		c.BytesReduction = float64(off.BytesMoved) / float64(on.BytesMoved)
	}
	if on.WallSeconds > 0 {
		c.Speedup = off.WallSeconds / on.WallSeconds
	}
	return c, nil
}

// runPushdownScenario generates the dataset, runs both iso cases, prints
// the comparison, and writes the JSON report when out is non-empty. The
// image hashes must match between legs — a mismatch is an unsound prune and
// fails the run — and the sparse case must actually skip bytes.
func runPushdownScenario(out string) error {
	dir, err := os.MkdirTemp("", "dcbench-pushdown-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var m dataset.Meta
	fmt.Sscanf(pushdownGrid, "%dx%dx%d", &m.GX, &m.GY, &m.GZ)
	fmt.Sscanf(pushdownChunks, "%dx%dx%d", &m.BX, &m.BY, &m.BZ)
	m.Timesteps, m.Files = pushdownTimesteps, pushdownFiles
	m.Seed, m.Plumes = pushdownSeed, pushdownPlumes
	st, err := dataset.Create(dir, m)
	if err != nil {
		return err
	}
	totalChunks := st.DS.Chunks()
	st.Close()

	sparse, err := runPushdownCase(dir, pushdownSparseIso)
	if err != nil {
		return err
	}
	dense, err := runPushdownCase(dir, pushdownDenseIso)
	if err != nil {
		return err
	}

	rep := pushdownReport{
		Description: fmt.Sprintf(
			"Near-storage pushdown scenario: a %s dataset (%d chunks x %d timesteps) rendered through R-E-Ra-M with predicate pushdown off vs on; iso %.2f is sparse (chunk summaries prune most chunks before any read), iso %.2f dense. bytes_moved is the R->E voxels stream.",
			pushdownGrid, totalChunks, pushdownTimesteps, pushdownSparseIso, pushdownDenseIso),
		Grid: pushdownGrid, Chunks: pushdownChunks,
		TotalChunks: totalChunks, Timesteps: pushdownTimesteps,
		Sparse: sparse, Dense: dense,
	}

	for _, c := range []struct {
		name string
		c    pushdownCase
	}{{"sparse", sparse}, {"dense", dense}} {
		fmt.Printf("pushdown %-6s iso=%.2f: bytes %8.2f MB -> %8.2f MB (%5.1fx), pruned %4d chunks, wall %.3fs -> %.3fs (%.2fx), hashes %s\n",
			c.name, c.c.Iso,
			float64(c.c.Off.BytesMoved)/1e6, float64(c.c.On.BytesMoved)/1e6, c.c.BytesReduction,
			c.c.On.ChunksPruned, c.c.Off.WallSeconds, c.c.On.WallSeconds, c.c.Speedup,
			map[bool]string{true: "identical", false: "DIFFER"}[c.c.HashIdentical])
	}
	if !sparse.HashIdentical || !dense.HashIdentical {
		return fmt.Errorf("pushdown changed the rendered image: pruning is unsound")
	}
	if sparse.On.BytesSkipped == 0 {
		return fmt.Errorf("sparse iso %.2f skipped no bytes: pruning never engaged", pushdownSparseIso)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dcbench: wrote pushdown report to %s\n", out)
	}
	return nil
}
