package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/obs"
)

// The elastic hot-spot scenario (-elastic): one worker host is 4x slower
// per buffer — a co-tenant hogging the machine, the situation the paper's
// static cost model cannot plan for — and the same pipeline runs twice,
// with the autoscale controller off and on. Off, the slow host's single
// worker copy gates every unit of work. On, the controller reads the
// live queue-depth signal, grows the hot copy sets at work-cycle
// boundaries within its budget, and work stealing lets idle copies drain
// the hot queues mid-cycle. The report (optionally written as JSON with
// -bench-out) compares wall time and records the scaling trajectory.

const (
	elasticUOWs        = 8
	elasticBuffers     = 64 // per unit of work
	elasticFastCost    = 200 * time.Microsecond
	elasticSlowCost    = 800 * time.Microsecond
	elasticSlowHost    = "node1"
	elasticQueueCap    = 4
	elasticExtraCopies = 3 // controller budget above the base placement
)

// hotSource emits the unit of work's buffers, split across source copies.
type hotSource struct {
	core.BaseFilter
	n int
}

func (s *hotSource) Process(ctx core.Ctx) error {
	payload := make([]byte, 4096)
	for i := ctx.CopyIndex(); i < s.n; i += ctx.TotalCopies() {
		if err := ctx.Write("items", core.Buffer{Payload: payload, Size: len(payload)}); err != nil {
			return err
		}
	}
	return nil
}

// hotWorker burns a fixed per-buffer cost — 4x higher on the slow host —
// and forwards each buffer downstream.
type hotWorker struct {
	core.BaseFilter
}

func (w *hotWorker) Process(ctx core.Ctx) error {
	cost := elasticFastCost
	if ctx.Host() == elasticSlowHost {
		cost = elasticSlowCost
	}
	for {
		b, ok := ctx.Read("items")
		if !ok {
			return nil
		}
		time.Sleep(cost)
		if err := ctx.Write("done", b); err != nil {
			return err
		}
	}
}

// hotSink counts deliveries.
type hotSink struct {
	core.BaseFilter
	got *int64
}

func (k *hotSink) Process(ctx core.Ctx) error {
	for {
		if _, ok := ctx.Read("done"); !ok {
			return nil
		}
		atomic.AddInt64(k.got, 1)
	}
}

func elasticGraph(got *int64) *core.Graph {
	g := core.NewGraph()
	g.AddFilter("S", func() core.Filter { return &hotSource{n: elasticBuffers} })
	g.AddFilter("W", func() core.Filter { return &hotWorker{} })
	g.AddFilter("K", func() core.Filter { return &hotSink{got: got} })
	g.Connect("S", "W", "items")
	g.Connect("W", "K", "done")
	return g
}

func elasticPlacement(workerCopies int) *core.Placement {
	return core.NewPlacement().
		Place("S", "node0", 1).
		Place("W", "node0", workerCopies).
		Place("W", elasticSlowHost, workerCopies).
		Place("K", "node0", 1)
}

// elasticRunReport is one leg of the comparison.
type elasticRunReport struct {
	WallSeconds   float64        `json:"wall_seconds"`
	PeakCopies    int            `json:"peak_copies"`
	CopiesAdded   int64          `json:"copies_added,omitempty"`
	CopiesRemoved int64          `json:"copies_removed,omitempty"`
	Rebalances    int64          `json:"rebalances,omitempty"`
	FinalCopies   map[string]int `json:"final_copies"`
}

// elasticReport is the scenario result, the shape BENCH_pr9.json carries.
type elasticReport struct {
	Description  string           `json:"description"`
	UOWs         int              `json:"uows"`
	Buffers      int              `json:"buffers_per_uow"`
	MinCopies    int              `json:"min_copies"`
	MaxCopies    int              `json:"max_copies"`
	Budget       int              `json:"budget"`
	Interval     string           `json:"interval"`
	AutoscaleOff elasticRunReport `json:"autoscale_off"`
	AutoscaleOn  elasticRunReport `json:"autoscale_on"`
	Speedup      float64          `json:"speedup"`
	BudgetOK     bool             `json:"budget_respected"`
}

// runElasticLeg executes the scenario pipeline once and reports wall time
// plus the scaling trajectory its ring sink observed.
func runElasticLeg(cfg *elastic.Config, minCopies int, steal bool) (elasticRunReport, error) {
	var got int64
	ring := obs.NewRingSink(1 << 15)
	reg := obs.NewRegistry()
	o := obs.New(ring, reg)
	pl := elasticPlacement(minCopies)
	r, err := core.NewRunner(elasticGraph(&got), pl, core.Options{
		QueueCap:  elasticQueueCap,
		UOWs:      make([]any, elasticUOWs),
		Obs:       o,
		Elastic:   cfg,
		StealWork: steal,
	})
	if err != nil {
		return elasticRunReport{}, err
	}
	stats, err := r.Run()
	if err != nil {
		return elasticRunReport{}, err
	}
	if want := int64(elasticUOWs * elasticBuffers); got != want {
		return elasticRunReport{}, fmt.Errorf("sink received %d buffers, want %d", got, want)
	}

	// Replay the scale trace to find the peak total copy count. All changes
	// at one work-cycle boundary apply atomically in the engine, so the
	// replay groups events by boundary (e.UOW) and measures the total only
	// between groups — a down+up pair at the same boundary is net-zero, not
	// a transient peak.
	rep := elasticRunReport{WallSeconds: stats.WallSeconds, FinalCopies: map[string]int{}}
	total, peak, lastUOW := 0, 0, -1
	seen := map[[2]string]int{}
	for _, e := range ring.Events() {
		if e.Kind != obs.KindScaleUp && e.Kind != obs.KindScaleDown {
			continue
		}
		if os.Getenv("DCBENCH_ELASTIC_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "scale event: uow=%d %s.%s -> %d (%s)\n", e.UOW, e.Filter, e.Host, e.Copy, e.Note)
		}
		if e.UOW != lastUOW {
			if total > peak {
				peak = total
			}
			lastUOW = e.UOW
		}
		key := [2]string{e.Filter, e.Host}
		prev, ok := seen[key]
		if !ok {
			prev = minCopies // scaled sets start from their placement entry (only W is ever hot)
		}
		total += e.Copy - prev
		seen[key] = e.Copy
	}
	if total > peak {
		peak = total
	}
	rep.PeakCopies = 2 + 2*minCopies + peak // S + K + both W sets + net growth
	rep.CopiesAdded = reg.Counter(elastic.MetricCopiesAdded).Value()
	rep.CopiesRemoved = reg.Counter(elastic.MetricCopiesRemoved).Value()
	rep.Rebalances = reg.Counter(elastic.MetricRebalances).Value()
	for _, f := range []string{"S", "W", "K"} {
		rep.FinalCopies[f] = len(r.Instances(f))
	}
	return rep, nil
}

// runElasticScenario runs both legs and emits the comparison; out, when
// non-empty, receives the JSON report (the BENCH_pr9.json artifact).
func runElasticScenario(minCopies, maxCopies int, interval time.Duration, out string) error {
	if minCopies < 1 {
		minCopies = 1
	}
	if maxCopies < minCopies {
		maxCopies = minCopies + 3
	}
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	baseTotal := 2 + 2*minCopies // S + K + two W entries
	budget := baseTotal + elasticExtraCopies

	off, err := runElasticLeg(nil, minCopies, false)
	if err != nil {
		return fmt.Errorf("autoscale off: %w", err)
	}
	off.PeakCopies = baseTotal
	cfg := &elastic.Config{
		MinCopies: minCopies, MaxCopies: maxCopies,
		Budget: budget, Interval: interval,
	}
	on, err := runElasticLeg(cfg, minCopies, true)
	if err != nil {
		return fmt.Errorf("autoscale on: %w", err)
	}

	rep := elasticReport{
		Description: fmt.Sprintf(
			"Elastic hot-spot scenario: %d UOWs x %d buffers through S -> W -> K with host %s 4x slower per buffer; identical pipeline with the autoscale controller off vs on (queue-depth driven scale-up at work-cycle boundaries, work stealing mid-cycle, budget %d total copies).",
			elasticUOWs, elasticBuffers, elasticSlowHost, budget),
		UOWs: elasticUOWs, Buffers: elasticBuffers,
		MinCopies: minCopies, MaxCopies: maxCopies,
		Budget: budget, Interval: interval.String(),
		AutoscaleOff: off, AutoscaleOn: on,
		BudgetOK: on.PeakCopies <= budget,
	}
	if on.WallSeconds > 0 {
		rep.Speedup = off.WallSeconds / on.WallSeconds
	}

	fmt.Printf("elastic hot-spot: autoscale off %.3fs, on %.3fs (%.2fx), peak copies %d / budget %d, added %d removed %d\n",
		off.WallSeconds, on.WallSeconds, rep.Speedup, on.PeakCopies, budget, on.CopiesAdded, on.CopiesRemoved)
	if !rep.BudgetOK {
		return fmt.Errorf("controller exceeded its copy budget: peak %d > budget %d", on.PeakCopies, budget)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dcbench: wrote elastic report to %s\n", out)
	}
	return nil
}
