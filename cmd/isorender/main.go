// Command isorender runs the real isosurface rendering pipeline end to end
// (Figure 2(a) of the paper): it reads a chunked dataset (from a datagen
// directory, or a synthetic in-memory one), extracts the isosurface,
// renders it with transparent raster-filter copies under a writer policy,
// merges the partial results, and writes a PNG.
//
// Usage:
//
//	isorender -o iso.png                         # synthetic in-memory data
//	isorender -dir /data/plume -o iso.png        # datagen dataset from disk
//	isorender -copies 4 -policy DD -alg ap -size 1024 -iso 0.8 -o iso.png
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/volume"
)

func main() {
	var (
		out      = flag.String("o", "iso.png", "output PNG path")
		dir      = flag.String("dir", "", "datagen dataset directory (empty: synthetic in-memory volume)")
		size     = flag.Int("size", 512, "output image width and height")
		iso      = flag.Float64("iso", 0.5, "isosurface value")
		timestep = flag.Int("timestep", 0, "timestep to render")
		copies   = flag.Int("copies", 2, "transparent copies of the raster filter")
		policy   = flag.String("policy", "DD", "writer policy: RR | WRR | DD")
		alg      = flag.String("alg", "ap", "hidden-surface removal: ap (active pixel) | zb (z-buffer)")
		grid     = flag.Int("grid", 97, "synthetic grid samples per axis (without -dir)")
		verbose  = flag.Bool("v", false, "print pipeline statistics")
	)
	flag.Parse()

	var src isoviz.ChunkSource
	if *dir != "" {
		st, err := dataset.Open(*dir)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		src = &isoviz.StoreSource{St: st}
	} else {
		n := *grid
		src = isoviz.NewFieldSource(volume.NewPlumeField(2002, 5), n, n, n, 4, 4, 4)
	}

	pol := core.PolicyByName(*policy)
	if pol == nil {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	algorithm := isoviz.ActivePixel
	if *alg == "zb" {
		algorithm = isoviz.ZBuffer
	}

	view := isoviz.View{
		Timestep: *timestep,
		Iso:      float32(*iso),
		Width:    *size, Height: *size,
		Camera: isoviz.DefaultView(0).Camera,
	}
	spec := isoviz.PipelineSpec{
		Config: isoviz.ReadExtract,
		Alg:    algorithm,
		Source: src,
		Assign: isoviz.AssignByCopy(src.Chunks()),
	}
	pl := core.NewPlacement().
		Place("RE", "local", 2).
		Place("Ra", "local", *copies).
		Place("M", "local", 1)

	r, err := core.NewRunner(spec.Build(), pl, core.Options{Policy: pol, UOWs: []any{view}})
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	stats, err := r.Run()
	if err != nil {
		fatal(err)
	}
	m, err := isoviz.MergeResult(r.Instances("M"))
	if err != nil {
		fatal(err)
	}
	img := m.Result().Image()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := png.Encode(f, img); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("rendered %d chunks -> %s (%dx%d, %s, %s policy, %d raster copies) in %.2fs\n",
		src.Chunks(), *out, *size, *size, algorithm, pol.Name(), *copies, time.Since(t0).Seconds())
	if *verbose {
		for _, name := range stats.StreamNames() {
			ss := stats.Streams[name]
			fmt.Printf("  stream %-10s %6d buffers  %8.2f MB  %d acks\n",
				name, ss.Buffers, float64(ss.Bytes)/1e6, ss.Acks)
		}
		for _, fn := range []string{"RE", "Ra", "M"} {
			fs := stats.Filters[fn]
			_, busy, _ := core.MinAvgMax(fs.BusySeconds)
			fmt.Printf("  filter %-3s x%d  avg busy %.3fs\n", fn, fs.Copies, busy)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isorender:", err)
	os.Exit(1)
}
