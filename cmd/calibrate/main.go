// Command calibrate measures the real implementation's unit costs on this
// machine — seconds per marching cell scanned, per triangle generated, per
// triangle rasterized, per pixel filled, per pixel merged — and prints them
// as an isoviz.CostModel literal. This ties the simulated engine's
// calibration to measured reality: run it, scale by the ratio of your CPU
// to the paper's reference core, and paste the result over
// isoviz.DefaultCosts to simulate clusters built from machines like yours.
package main

import (
	"flag"
	"fmt"
	"time"

	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

func main() {
	var (
		grid = flag.Int("grid", 129, "calibration volume samples per axis")
		size = flag.Int("size", 1024, "calibration image width and height")
		iso  = flag.Float64("iso", 0.5, "isovalue")
	)
	flag.Parse()

	fld := volume.NewPlumeField(7, 5)
	fmt.Printf("sampling %d^3 volume...\n", *grid)
	v := volume.Rasterize(fld, *grid, *grid, *grid, 0)

	// Extraction: split cell scanning from triangle generation by running
	// once at an isovalue above the maximum (pure scan) and once for real.
	_, max := v.MinMax()
	t0 := time.Now()
	scanStats := mcubes.Walk(v, max+1, func(geom.Triangle) {})
	scanSecs := time.Since(t0).Seconds()
	cellSecs := scanSecs / float64(scanStats.Cells)

	var tris []geom.Triangle
	t0 = time.Now()
	st := mcubes.Walk(v, float32(*iso), func(t geom.Triangle) { tris = append(tris, t) })
	extractSecs := time.Since(t0).Seconds()
	triGenSecs := (extractSecs - scanSecs) / float64(maxInt(st.Triangles, 1))
	if triGenSecs < 0 {
		triGenSecs = 0
	}

	// Rasterization: per-triangle setup vs per-pixel fill, separated by
	// rendering the same scene at two image sizes.
	cam := geom.DefaultCamera()
	measure := func(w int) (secs float64, pixels int64) {
		z := render.NewZBuffer(w, w)
		rr := render.NewRaster(cam, w, w)
		t0 := time.Now()
		rr.DrawAll(tris, z)
		return time.Since(t0).Seconds(), rr.Pixels
	}
	smallSecs, smallPx := measure(*size / 4)
	bigSecs, bigPx := measure(*size)
	pixelSecs := (bigSecs - smallSecs) / float64(maxInt64(bigPx-smallPx, 1))
	triRasterSecs := (smallSecs - pixelSecs*float64(smallPx)) / float64(maxInt(len(tris), 1))
	if triRasterSecs < 0 {
		triRasterSecs = 0
	}

	// Merging.
	full := render.NewZBuffer(*size, *size)
	rr := render.NewRaster(cam, *size, *size)
	rr.DrawAll(tris, full)
	acc := render.NewZBuffer(*size, *size)
	t0 = time.Now()
	acc.MergeFrom(full)
	mergeSecs := time.Since(t0).Seconds() / float64((*size)*(*size))
	t0 = time.Now()
	img := acc.Image()
	imageGenSecs := time.Since(t0).Seconds() / float64((*size)*(*size))
	_ = img

	fmt.Printf("\nmeasured on this machine (%d cells, %d triangles, %dx%d image):\n\n",
		scanStats.Cells, len(tris), *size, *size)
	fmt.Printf("isoviz.CostModel{\n")
	fmt.Printf("\tReadCPUPerByte:    6e-9, // not measured here: dominated by I/O path\n")
	fmt.Printf("\tCellSeconds:       %.3g,\n", cellSecs)
	fmt.Printf("\tTriGenSeconds:     %.3g,\n", triGenSecs)
	fmt.Printf("\tTriRasterSeconds:  %.3g,\n", triRasterSecs)
	fmt.Printf("\tPixelSeconds:      %.3g,\n", pixelSecs)
	fmt.Printf("\tMergePixelSeconds: %.3g,\n", mergeSecs)
	fmt.Printf("\tImageGenSeconds:   %.3g,\n", imageGenSecs)
	fmt.Printf("\tCoverage:          0.75,\n")
	fmt.Printf("\tAPDedupFactor:     0.55,\n")
	fmt.Printf("}\n")
	fmt.Printf("\nreference calibration (isoviz.DefaultCosts) models a 2002 Pentium III 550;\n")
	fmt.Printf("divide your constants by DefaultCosts' to estimate this machine's speedup.\n")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
