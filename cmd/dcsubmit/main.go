// Command dcsubmit coordinates a distributed isosurface rendering across
// running dcworker processes: it ships the pipeline spec, drives the units
// of work, and prints the aggregated stream statistics.
//
//	dcworker -listen :9101 &   # "host" data1
//	dcworker -listen :9102 &   # "host" viz
//	dcsubmit -workers data1=127.0.0.1:9101,viz=127.0.0.1:9102 \
//	         -merge viz -copies 2 -size 512 -iso 0.5
//
// The rendered image stays on the merge worker's filter instance; pass
// -dir to render a datagen dataset every worker can open, or omit it for
// the synthetic field (reconstructed worker-side from its seed).
//
// Data-path fast paths: -transport selects the peer data plane (tcp, or
// auto/ring for zero-copy in-process rings between workers sharing a
// process); with -dir, -readahead overlaps each RE copy's chunk reads with
// its extraction work (bounded by -readahead-bytes) and -mmap switches the
// store to memory-mapped reads. See DESIGN.md §14. -pushdown turns on
// near-storage predicate pruning: each RE copy checks the view's iso-value
// against the dataset's summary sidecar and skips chunks that provably
// contribute no triangles, before any byte is read (DESIGN.md §17).
//
// Fault tolerance: -uow-retries lets the coordinator replan a failed unit
// of work onto the surviving workers (dead hosts' filter copies move to
// survivors); -hb-interval / -hb-misses tune the heartbeat liveness budget
// and -dialtimeout the per-attempt dial timeout everywhere. -faults installs
// a coordinator-side deterministic fault plan (see internal/faults) for
// chaos experiments, e.g. injected dial failures. -seed pins both the fault
// plan's random source and the synthetic field, so a chaos run is
// reproducible from the command line alone; an explicit seed= directive
// inside -faults still wins.
//
// Against a dcjobd server, -server submits the same pipeline as a job over
// HTTP instead of coordinating directly: the worker mesh comes from the
// server's registry (so -workers is not needed), the submission queues
// under -tenant's quota, and dcsubmit polls until the job finishes:
//
//	dcsubmit -server http://localhost:8080 -tenant teamA -size 256
//
// -faults is refused with -server (the server is the coordinator and owns
// its own fault plan); heartbeat, retry, and policy tuning still applies —
// it travels inside the job's options.
//
// Server-side resilience (DESIGN.md §15): -job-retries sets the job's
// whole-job retry budget (the server re-runs a failed job with exponential
// backoff; -1 pins retries off even if the server has a default) and
// -deadline bounds the job's total lifetime — queued or running — after
// which the server cancels it. -cancel <id> cancels an earlier submission
// via DELETE /jobs/{id} and exits. A 503 on submit means the server shed
// the job under overload; retry after the Retry-After interval it reports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/exec"
	"datacutter/internal/faults"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/jobd"
	"datacutter/internal/obs"
)

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated host=addr pairs (required)")
		merge   = flag.String("merge", "", "host that runs the merge filter (default: first worker)")
		dir     = flag.String("dir", "", "datagen dataset directory readable by every worker (default: synthetic field)")
		copies  = flag.Int("copies", 2, "raster copies per host")
		size    = flag.Int("size", 512, "output image width and height")
		iso     = flag.Float64("iso", 0.5, "isosurface value")
		steps   = flag.Int("timesteps", 1, "consecutive timesteps to render")
		policy  = flag.String("policy", "DD", "default writer policy: RR | WRR | DD | DD/<k>")
		streams = flag.String("stream-policy", "", "per-stream policy overrides, e.g. 'triangles=DD/8,pixels=WRR'")

		transport = flag.String("transport", "", "peer data plane: tcp (default) | auto (in-process rings for same-process peers) | ring (require rings)")
		readahead = flag.Int("readahead", 0, "chunks each RE copy prefetches ahead of its planned read order (with -dir)")
		raBytes   = flag.Int64("readahead-bytes", 0, "byte budget for resident prefetched chunks, 0 = unbounded (with -readahead)")
		mmap      = flag.Bool("mmap", false, "memory-map dataset files instead of pread (with -dir)")
		pushdown  = flag.Bool("pushdown", false, "prune chunks against the store's summary sidecar on the worker owning the data (with -dir)")

		grid    = flag.Int("grid", 65, "synthetic grid samples per axis (without -dir)")
		debug   = flag.String("debug-addr", "", "serve coordinator /metrics and /debug/pprof on this address during the run")
		metrics = flag.Bool("metrics", false, "print the coordinator metrics snapshot after the run")
		wirebuf = flag.Int("wirebuf", 0, "coordinator-side write-coalescing buffer in bytes (default 64 KiB)")

		retries     = flag.Int("uow-retries", 0, "max per-unit-of-work retries after a host loss (0 = fail fast)")
		hbInterval  = flag.Duration("hb-interval", 0, "heartbeat interval for liveness tracking (default 1s)")
		hbMisses    = flag.Int("hb-misses", 0, "missed heartbeat intervals before a host is declared dead (default 3)")
		dialTimeout = flag.Duration("dialtimeout", 0, "per-attempt dial timeout, coordinator and worker peer mesh (default 10s)")
		faultSpec   = flag.String("faults", "", "coordinator-side deterministic fault plan, e.g. 'faildial=2'")
		seed        = flag.Int64("seed", 0, "seed for the -faults plan and the synthetic field (0 = embedded defaults)")

		server = flag.String("server", "", "dcjobd base URL; submit as a job over HTTP instead of coordinating directly")
		tenant = flag.String("tenant", "", "tenant name for -server submissions")
		name   = flag.String("name", "isoviz", "job name for -server submissions")

		jobRetries = flag.Int("job-retries", 0, "whole-job retry budget on the server (0 = server default, -1 = no retries; with -server)")
		deadline   = flag.Duration("deadline", 0, "total job lifetime, queued plus running, before the server cancels it (with -server)")
		cancelID   = flag.Uint64("cancel", 0, "cancel job <id> on -server and exit")
	)
	flag.Parse()
	if *cancelID != 0 {
		if *server == "" {
			fatal(fmt.Errorf("-cancel needs -server"))
		}
		cancelJob(*server, *cancelID)
		return
	}
	if *wirebuf > 0 {
		dist.SetWireBufferSize(*wirebuf)
	}
	if *server != "" && *faultSpec != "" {
		fatal(fmt.Errorf("-faults is coordinator-side; with -server the job server coordinates"))
	}
	if *server == "" && *workers == "" {
		fmt.Fprintln(os.Stderr, "dcsubmit: -workers is required (or -server)")
		flag.Usage()
		os.Exit(2)
	}
	addrs := map[string]string{}
	var hosts []string
	if *server != "" {
		for _, w := range fetchWorkers(*server) {
			addrs[w.Host] = w.Addr
			hosts = append(hosts, w.Host)
		}
		if len(hosts) == 0 {
			fatal(fmt.Errorf("server %s has no registered workers", *server))
		}
	} else {
		for _, pair := range strings.Split(*workers, ",") {
			host, addr, ok := strings.Cut(pair, "=")
			if !ok {
				fatal(fmt.Errorf("bad -workers entry %q (want host=addr)", pair))
			}
			addrs[host] = addr
			hosts = append(hosts, host)
		}
	}
	mergeHost := *merge
	if mergeHost == "" {
		mergeHost = hosts[0]
	}
	if _, ok := addrs[mergeHost]; !ok {
		fatal(fmt.Errorf("merge host %q not among workers", mergeHost))
	}

	// Pipeline spec: source reconstructed worker-side.
	var re dist.FilterSpec
	if *dir != "" {
		raw, err := json.Marshal(isoviz.StoreREParams{
			Dir: *dir, Readahead: *readahead, ReadaheadBytes: *raBytes, Mmap: *mmap,
			Pushdown: *pushdown,
		})
		if err != nil {
			fatal(err)
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREStore, Params: raw}
	} else {
		if *readahead > 0 || *mmap || *pushdown {
			fatal(fmt.Errorf("-readahead/-mmap/-pushdown tune on-disk store reads; they need -dir"))
		}
		fieldSeed := int64(2002)
		if *seed != 0 {
			fieldSeed = *seed
		}
		raw, err := json.Marshal(isoviz.FieldREParams{
			Seed: fieldSeed, Plumes: 5,
			GX: *grid, GY: *grid, GZ: *grid, BX: 4, BY: 4, BZ: 4,
		})
		if err != nil {
			fatal(err)
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREField, Params: raw}
	}
	spec := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			re,
			{Name: "Ra", Kind: isoviz.KindRasterAP},
			{Name: "M", Kind: isoviz.KindMerge},
		},
		Streams: []core.StreamSpec{
			{Name: isoviz.StreamTriangles, From: "RE", To: "Ra"},
			{Name: isoviz.StreamPixels, From: "Ra", To: "M"},
		},
	}

	var placement []dist.PlacementEntry
	for _, h := range hosts {
		placement = append(placement,
			dist.PlacementEntry{Filter: "RE", Host: h, Copies: 1},
			dist.PlacementEntry{Filter: "Ra", Host: h, Copies: *copies},
		)
	}
	placement = append(placement, dist.PlacementEntry{Filter: "M", Host: mergeHost, Copies: 1})

	var uows []any
	for t := 0; t < *steps; t++ {
		uows = append(uows, isoviz.View{
			Timestep: t, Iso: float32(*iso),
			Width: *size, Height: *size, Camera: geom.DefaultCamera(),
		})
	}

	var o *obs.Observer
	var reg *obs.Registry
	if *debug != "" || *metrics {
		reg = obs.NewRegistry()
		o = obs.New(nil, reg)
		o.SetClock(obs.NewWallClock())
		if *debug != "" {
			dbg, err := obs.ServeDebug(*debug, reg, nil)
			if err != nil {
				fatal(err)
			}
			defer dbg.Close()
			fmt.Printf("coordinator debug endpoint on http://%s/\n", dbg.Addr)
		}
	}

	streamPolicy, err := exec.ParseStreamPolicies(*streams)
	if err != nil {
		fatal(err)
	}

	opts := dist.Options{
		Policy:            *policy,
		StreamPolicy:      streamPolicy,
		Transport:         *transport,
		MaxUOWRetries:     *retries,
		HeartbeatInterval: *hbInterval,
		HeartbeatMisses:   *hbMisses,
		DialTimeout:       *dialTimeout,
	}
	if *faultSpec != "" {
		// Prepend so a later, explicit seed= directive in the plan still
		// overrides (the parser applies the last one it sees).
		planSpec := *faultSpec
		if *seed != 0 {
			planSpec = fmt.Sprintf("seed=%d; %s", *seed, planSpec)
		}
		plan, err := faults.ParsePlan(planSpec)
		if err != nil {
			fatal(err)
		}
		opts = opts.WithFaults(plan.Injector())
	}
	var stats *core.Stats
	if *server != "" {
		stats = submitJob(*server, jobd.JobSpec{
			Name: *name, Tenant: *tenant,
			Graph: spec, Placement: placement, Options: opts,
			UOWs:       encodeUOWs(uows),
			MaxRetries: *jobRetries, Deadline: *deadline,
		})
	} else {
		st, err := dist.RunObserved(addrs, spec, placement, opts, uows, o)
		if err != nil {
			fatal(err)
		}
		stats = st
	}
	if *metrics {
		fmt.Println("coordinator metrics snapshot:")
		reg.WriteJSON(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("rendered %d timestep(s) at %dx%d across %d workers (merge on %s, %s policy)\n",
		*steps, *size, *size, len(hosts), mergeHost, *policy)
	for _, name := range stats.StreamNames() {
		ss := stats.Streams[name]
		fmt.Printf("  stream %-10s %6d buffers %9.2f MB %6d acks  per host: %v\n",
			name, ss.Buffers, float64(ss.Bytes)/1e6, ss.Acks, ss.PerTargetHost)
	}
}

// fetchWorkers lists the server's registered workers (host-ordered).
func fetchWorkers(server string) []struct{ Host, Addr string } {
	resp, err := http.Get(server + "/workers")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s/workers: %s: %s", server, resp.Status, body))
	}
	var out []struct{ Host, Addr string }
	if err := json.Unmarshal(body, &out); err != nil {
		fatal(fmt.Errorf("GET %s/workers: %w", server, err))
	}
	return out
}

func encodeUOWs(uows []any) []dist.RawUOW {
	out := make([]dist.RawUOW, 0, len(uows))
	for _, u := range uows {
		raw, err := dist.EncodeUOW(u)
		if err != nil {
			fatal(err)
		}
		out = append(out, raw)
	}
	return out
}

// submitJob POSTs the spec to a dcjobd server and polls until the job
// leaves the queue and finishes, returning its aggregated stats.
func submitJob(server string, spec jobd.JobSpec) *core.Stats {
	body, err := json.Marshal(spec)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(server+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	reply, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fatal(fmt.Errorf("POST %s/jobs: %s: %s", server, resp.Status, strings.TrimSpace(string(reply))))
	}
	var sub struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(reply, &sub); err != nil {
		fatal(err)
	}
	fmt.Printf("submitted job %d to %s\n", sub.ID, server)

	var last jobd.State
	for {
		var j jobd.Job
		got := httpJSON(fmt.Sprintf("%s/jobs/%d", server, sub.ID), &j)
		if got != http.StatusOK {
			fatal(fmt.Errorf("job %d vanished from the server (status %d)", sub.ID, got))
		}
		if j.State != last {
			last = j.State
			fmt.Printf("job %d: %s\n", sub.ID, j.State)
		}
		switch j.State {
		case jobd.StateDone:
			return j.Stats
		case jobd.StateFailed:
			fatal(fmt.Errorf("job %d failed: %s", sub.ID, j.Err))
		case jobd.StateCancelled:
			fatal(fmt.Errorf("job %d cancelled: %s", sub.ID, j.Err))
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// cancelJob asks the server to cancel a job: DELETE /jobs/{id}. A 202 means
// the cancellation was accepted (queued jobs cancel immediately; running
// jobs are torn down asynchronously); 409 means the job already finished.
func cancelJob(server string, id uint64) {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", server, id), nil)
	if err != nil {
		fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	switch resp.StatusCode {
	case http.StatusAccepted:
		fmt.Printf("job %d: cancellation accepted\n", id)
	case http.StatusConflict:
		fatal(fmt.Errorf("job %d already finished: %s", id, strings.TrimSpace(string(body))))
	default:
		fatal(fmt.Errorf("DELETE %s/jobs/%d: %s: %s", server, id, resp.Status, strings.TrimSpace(string(body))))
	}
}

func httpJSON(url string, v any) int {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			fatal(fmt.Errorf("GET %s: %w", url, err))
		}
	}
	return resp.StatusCode
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcsubmit:", err)
	os.Exit(1)
}
