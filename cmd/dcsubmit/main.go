// Command dcsubmit coordinates a distributed isosurface rendering across
// running dcworker processes: it ships the pipeline spec, drives the units
// of work, and prints the aggregated stream statistics.
//
//	dcworker -listen :9101 &   # "host" data1
//	dcworker -listen :9102 &   # "host" viz
//	dcsubmit -workers data1=127.0.0.1:9101,viz=127.0.0.1:9102 \
//	         -merge viz -copies 2 -size 512 -iso 0.5
//
// The rendered image stays on the merge worker's filter instance; pass
// -dir to render a datagen dataset every worker can open, or omit it for
// the synthetic field (reconstructed worker-side from its seed).
//
// Fault tolerance: -uow-retries lets the coordinator replan a failed unit
// of work onto the surviving workers (dead hosts' filter copies move to
// survivors); -hb-interval / -hb-misses tune the heartbeat liveness budget
// and -dialtimeout the per-attempt dial timeout everywhere. -faults installs
// a coordinator-side deterministic fault plan (see internal/faults) for
// chaos experiments, e.g. injected dial failures. -seed pins both the fault
// plan's random source and the synthetic field, so a chaos run is
// reproducible from the command line alone; an explicit seed= directive
// inside -faults still wins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/exec"
	"datacutter/internal/faults"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/obs"
)

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated host=addr pairs (required)")
		merge   = flag.String("merge", "", "host that runs the merge filter (default: first worker)")
		dir     = flag.String("dir", "", "datagen dataset directory readable by every worker (default: synthetic field)")
		copies  = flag.Int("copies", 2, "raster copies per host")
		size    = flag.Int("size", 512, "output image width and height")
		iso     = flag.Float64("iso", 0.5, "isosurface value")
		steps   = flag.Int("timesteps", 1, "consecutive timesteps to render")
		policy  = flag.String("policy", "DD", "default writer policy: RR | WRR | DD | DD/<k>")
		streams = flag.String("stream-policy", "", "per-stream policy overrides, e.g. 'triangles=DD/8,pixels=WRR'")
		grid    = flag.Int("grid", 65, "synthetic grid samples per axis (without -dir)")
		debug   = flag.String("debug-addr", "", "serve coordinator /metrics and /debug/pprof on this address during the run")
		metrics = flag.Bool("metrics", false, "print the coordinator metrics snapshot after the run")
		wirebuf = flag.Int("wirebuf", 0, "coordinator-side write-coalescing buffer in bytes (default 64 KiB)")

		retries     = flag.Int("uow-retries", 0, "max per-unit-of-work retries after a host loss (0 = fail fast)")
		hbInterval  = flag.Duration("hb-interval", 0, "heartbeat interval for liveness tracking (default 1s)")
		hbMisses    = flag.Int("hb-misses", 0, "missed heartbeat intervals before a host is declared dead (default 3)")
		dialTimeout = flag.Duration("dialtimeout", 0, "per-attempt dial timeout, coordinator and worker peer mesh (default 10s)")
		faultSpec   = flag.String("faults", "", "coordinator-side deterministic fault plan, e.g. 'faildial=2'")
		seed        = flag.Int64("seed", 0, "seed for the -faults plan and the synthetic field (0 = embedded defaults)")
	)
	flag.Parse()
	if *wirebuf > 0 {
		dist.SetWireBufferSize(*wirebuf)
	}
	if *workers == "" {
		fmt.Fprintln(os.Stderr, "dcsubmit: -workers is required")
		flag.Usage()
		os.Exit(2)
	}
	addrs := map[string]string{}
	var hosts []string
	for _, pair := range strings.Split(*workers, ",") {
		host, addr, ok := strings.Cut(pair, "=")
		if !ok {
			fatal(fmt.Errorf("bad -workers entry %q (want host=addr)", pair))
		}
		addrs[host] = addr
		hosts = append(hosts, host)
	}
	mergeHost := *merge
	if mergeHost == "" {
		mergeHost = hosts[0]
	}
	if _, ok := addrs[mergeHost]; !ok {
		fatal(fmt.Errorf("merge host %q not among workers", mergeHost))
	}

	// Pipeline spec: source reconstructed worker-side.
	var re dist.FilterSpec
	if *dir != "" {
		raw, err := json.Marshal(isoviz.StoreREParams{Dir: *dir})
		if err != nil {
			fatal(err)
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREStore, Params: raw}
	} else {
		fieldSeed := int64(2002)
		if *seed != 0 {
			fieldSeed = *seed
		}
		raw, err := json.Marshal(isoviz.FieldREParams{
			Seed: fieldSeed, Plumes: 5,
			GX: *grid, GY: *grid, GZ: *grid, BX: 4, BY: 4, BZ: 4,
		})
		if err != nil {
			fatal(err)
		}
		re = dist.FilterSpec{Name: "RE", Kind: isoviz.KindREField, Params: raw}
	}
	spec := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			re,
			{Name: "Ra", Kind: isoviz.KindRasterAP},
			{Name: "M", Kind: isoviz.KindMerge},
		},
		Streams: []core.StreamSpec{
			{Name: isoviz.StreamTriangles, From: "RE", To: "Ra"},
			{Name: isoviz.StreamPixels, From: "Ra", To: "M"},
		},
	}

	var placement []dist.PlacementEntry
	for _, h := range hosts {
		placement = append(placement,
			dist.PlacementEntry{Filter: "RE", Host: h, Copies: 1},
			dist.PlacementEntry{Filter: "Ra", Host: h, Copies: *copies},
		)
	}
	placement = append(placement, dist.PlacementEntry{Filter: "M", Host: mergeHost, Copies: 1})

	var uows []any
	for t := 0; t < *steps; t++ {
		uows = append(uows, isoviz.View{
			Timestep: t, Iso: float32(*iso),
			Width: *size, Height: *size, Camera: geom.DefaultCamera(),
		})
	}

	var o *obs.Observer
	var reg *obs.Registry
	if *debug != "" || *metrics {
		reg = obs.NewRegistry()
		o = obs.New(nil, reg)
		o.SetClock(obs.NewWallClock())
		if *debug != "" {
			dbg, err := obs.ServeDebug(*debug, reg, nil)
			if err != nil {
				fatal(err)
			}
			defer dbg.Close()
			fmt.Printf("coordinator debug endpoint on http://%s/\n", dbg.Addr)
		}
	}

	streamPolicy, err := exec.ParseStreamPolicies(*streams)
	if err != nil {
		fatal(err)
	}

	opts := dist.Options{
		Policy:            *policy,
		StreamPolicy:      streamPolicy,
		MaxUOWRetries:     *retries,
		HeartbeatInterval: *hbInterval,
		HeartbeatMisses:   *hbMisses,
		DialTimeout:       *dialTimeout,
	}
	if *faultSpec != "" {
		// Prepend so a later, explicit seed= directive in the plan still
		// overrides (the parser applies the last one it sees).
		planSpec := *faultSpec
		if *seed != 0 {
			planSpec = fmt.Sprintf("seed=%d; %s", *seed, planSpec)
		}
		plan, err := faults.ParsePlan(planSpec)
		if err != nil {
			fatal(err)
		}
		opts = opts.WithFaults(plan.Injector())
	}
	stats, err := dist.RunObserved(addrs, spec, placement, opts, uows, o)
	if err != nil {
		fatal(err)
	}
	if *metrics {
		fmt.Println("coordinator metrics snapshot:")
		reg.WriteJSON(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("rendered %d timestep(s) at %dx%d across %d workers (merge on %s, %s policy)\n",
		*steps, *size, *size, len(hosts), mergeHost, *policy)
	for _, name := range stats.StreamNames() {
		ss := stats.Streams[name]
		fmt.Printf("  stream %-10s %6d buffers %9.2f MB %6d acks  per host: %v\n",
			name, ss.Buffers, float64(ss.Bytes)/1e6, ss.Acks, ss.PerTargetHost)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcsubmit:", err)
	os.Exit(1)
}
