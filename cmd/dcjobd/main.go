// Command dcjobd runs the persistent multi-tenant job server: it accepts
// pipeline submissions over HTTP, queues them under per-tenant quotas, and
// coordinates each job over a shared mesh of persistent dcworker processes
// (workers register themselves with -register; each job's frames carry its
// job id, so many jobs share one mesh safely).
//
//	dcjobd -listen :8080 -journal /var/lib/dc/jobs.jsonl &
//	dcworker -listen :9101 -persistent -host data1 -register http://localhost:8080 &
//	dcworker -listen :9102 -persistent -host viz   -register http://localhost:8080 &
//	dcsubmit -server http://localhost:8080 -size 256
//
// The HTTP surface is documented on jobd.Server.Handler: POST/GET /jobs,
// GET /jobs/{id}(,/events,/metrics), POST/GET /workers, GET /status, plus
// the layered obs endpoints /healthz, /metrics, and /debug/pprof.
//
// With -journal, every submission is appended to a JSONL write-ahead log
// before it is acknowledged; a restarted server replays the log and re-runs
// any job that had not finished. SIGINT/SIGTERM drain gracefully: new
// submissions are refused, running jobs get -drain-timeout to finish, and
// the final metrics snapshot is printed before exit.
//
// Per-tenant quotas use the grammar 'tenant=maxRunning:maxQueued:maxBytes'
// (0 = unlimited), e.g. -quotas 'teamA=1:4:0,teamB=2:16:1048576'; -quota
// sets the default for unlisted tenants.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"datacutter/internal/jobd"
	"datacutter/internal/obs"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP API address")
		journal      = flag.String("journal", "", "write-ahead job journal path (JSONL; empty disables persistence)")
		maxRunning   = flag.Int("max-concurrent", 0, "max concurrently running jobs across all tenants (default 4)")
		defQuota     = flag.String("quota", "", "default per-tenant quota as maxRunning:maxQueued:maxBytes (0 = unlimited)")
		quotas       = flag.String("quotas", "", "per-tenant overrides, e.g. 'teamA=1:4:0,teamB=2:16:1048576'")
		probe        = flag.Duration("probe-interval", 0, "worker health-probe period (default 2s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on SIGINT/SIGTERM")

		maxRetries      = flag.Int("max-retries", 0, "default retry budget for jobs that do not set one (default 0: no retries)")
		retryBackoff    = flag.Duration("retry-backoff", 0, "base of the exponential retry backoff (default 500ms)")
		retryBackoffMax = flag.Duration("retry-backoff-max", 0, "retry backoff cap (default 30s)")
		strikes         = flag.Int("quarantine-strikes", 0, "attributed failures before a worker is quarantined (default 3)")
		probation       = flag.Duration("probation", 0, "quarantine sit-out before the half-open reinstatement probe (default 30s)")
		maxQueueAge     = flag.Duration("max-queue-age", 0, "shed a tenant's submissions while its oldest queued job is older than this (0 disables)")
		maxQueueDepth   = flag.Int("max-queue-depth", 0, "shed submissions when the global queue holds this many jobs (0 = unlimited)")
		shedRetryAfter  = flag.Duration("retry-after", 0, "Retry-After hint on shed (503) responses (default 5s)")
		compactBytes    = flag.Int64("journal-compact", 0, "compact the journal once it exceeds this many bytes (default 4 MiB)")
	)
	flag.Parse()

	cfg := jobd.Config{
		MaxRunning:    *maxRunning,
		JournalPath:   *journal,
		ProbeInterval: *probe,
		Registry:      obs.NewRegistry(),

		DefaultMaxRetries:   *maxRetries,
		RetryBackoff:        *retryBackoff,
		RetryBackoffMax:     *retryBackoffMax,
		QuarantineStrikes:   *strikes,
		Probation:           *probation,
		MaxQueueAge:         *maxQueueAge,
		MaxQueueDepth:       *maxQueueDepth,
		ShedRetryAfter:      *shedRetryAfter,
		JournalCompactBytes: *compactBytes,
	}
	if *defQuota != "" {
		q, err := parseQuota(*defQuota)
		if err != nil {
			fatal(err)
		}
		cfg.DefaultQuota = q
	}
	if *quotas != "" {
		cfg.Quotas = map[string]jobd.Quota{}
		for _, entry := range strings.Split(*quotas, ",") {
			tenant, spec, ok := strings.Cut(entry, "=")
			if !ok {
				fatal(fmt.Errorf("bad -quotas entry %q (want tenant=maxRunning:maxQueued:maxBytes)", entry))
			}
			q, err := parseQuota(spec)
			if err != nil {
				fatal(err)
			}
			cfg.Quotas[tenant] = q
		}
	}

	s, err := jobd.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Addr: *listen, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("dcjobd serving on http://%s/ (journal: %s)\n", *listen, orNone(*journal))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case got := <-sig:
		fmt.Printf("dcjobd: %s — draining (up to %s for running jobs)\n", got, *drainTimeout)
	}
	if !s.Drain(*drainTimeout) {
		fmt.Fprintln(os.Stderr, "dcjobd: drain timed out with jobs still running")
	}
	srv.Close()
	fmt.Println("dcjobd final metrics snapshot:")
	cfg.Registry.WriteJSON(os.Stdout)
	fmt.Println()
	s.Close()
}

// parseQuota decodes maxRunning:maxQueued:maxBytes; trailing fields may be
// omitted ("2" caps running only).
func parseQuota(spec string) (jobd.Quota, error) {
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return jobd.Quota{}, fmt.Errorf("bad quota %q (want maxRunning:maxQueued:maxBytes)", spec)
	}
	var q jobd.Quota
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil || n < 0 {
			return jobd.Quota{}, fmt.Errorf("bad quota %q: field %d", spec, i+1)
		}
		switch i {
		case 0:
			q.MaxRunning = int(n)
		case 1:
			q.MaxQueued = int(n)
		case 2:
			q.MaxQueuedBytes = n
		}
	}
	return q, nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcjobd:", err)
	os.Exit(1)
}
