// Command dcworker serves one host of a distributed DataCutter run: it
// listens for a coordinator, builds the filter copies placed on its host
// name, and exchanges stream buffers with peer workers over TCP (the
// deployment model of the original DataCutter prototype).
//
// The worker can construct any filter kind registered by the packages it
// imports; this binary imports the isosurface application, so it serves
// isoviz pipelines. Run one worker per host:
//
//	dcworker -listen :9101   # on node1
//	dcworker -listen :9102   # on node2
//
// then point a coordinator (e.g. examples/distributed) at the addresses.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"datacutter/internal/dist"
	_ "datacutter/internal/isoviz" // register the isosurface filter kinds
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9101", "address to listen on")
	flag.Parse()

	w, err := dist.NewWorker(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcworker:", err)
		os.Exit(1)
	}
	fmt.Printf("dcworker listening on %s\n", w.Addr())
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		w.Close()
	}()
	w.Serve()
}
