// Command dcworker serves one host of a distributed DataCutter run: it
// listens for a coordinator, builds the filter copies placed on its host
// name, and exchanges stream buffers with peer workers over TCP (the
// deployment model of the original DataCutter prototype).
//
// The worker can construct any filter kind registered by the packages it
// imports; this binary imports the isosurface application, so it serves
// isoviz pipelines. Run one worker per host:
//
//	dcworker -listen :9101   # on node1
//	dcworker -listen :9102 -debug-addr :6060   # on node2, with live metrics
//
// then point a coordinator (e.g. examples/distributed) at the addresses.
//
// With -debug-addr, the worker serves /metrics (live frame/byte/ack
// counters, flush batching gauges — dist.tx.flushes and
// dist.tx.frames_per_flush — and stall histograms as JSON), /debug/events
// (recent buffer-lifecycle trace events), and /debug/pprof/. With -trace,
// every trace event is also appended to a JSONL file. -wirebuf sizes the
// per-connection write-coalescing buffer (larger buffers batch more frames
// per syscall on fast producers).
//
// For chaos testing, -faults installs a deterministic fault plan (see
// internal/faults for the grammar) on every connection this worker opens or
// accepts — e.g. -faults 'kill=data:100' crashes the process model after
// 100 received data frames. -dialtimeout overrides the per-attempt peer
// dial timeout when the coordinator's options don't set one.
//
// As a persistent mesh member for a dcjobd server, the worker registers
// itself (and re-registers periodically, so a restarted server re-learns
// the mesh) and keeps serving between jobs:
//
//	dcworker -listen :9101 -host data1 -register http://jobd:8080 \
//	         -debug-addr :6061
//
// -host is the placement name jobs address this worker by; -advertise
// overrides the dist address sent to the server (defaults to the listen
// address). SIGINT/SIGTERM drain gracefully: active job sessions get
// -drain-timeout to finish (a second signal aborts immediately), then the
// final metrics snapshot is flushed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "datacutter/internal/conformance" // register the conformance filter kind
	"datacutter/internal/dist"
	"datacutter/internal/faults"
	_ "datacutter/internal/isoviz" // register the isosurface filter kinds
	"datacutter/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9101", "address to listen on")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/events, /debug/pprof on this address (e.g. :6060)")
	trace := flag.String("trace", "", "append buffer-lifecycle trace events to this JSONL file")
	wirebuf := flag.Int("wirebuf", 0, "per-connection write-coalescing buffer in bytes (default 64 KiB)")
	faultSpec := flag.String("faults", "", "deterministic fault plan, e.g. 'seed=7; drop=triangles:100; kill=data:500'")
	dialTimeout := flag.Duration("dialtimeout", 0, "per-attempt peer dial timeout when the session options don't set one (default 10s)")
	register := flag.String("register", "", "dcjobd base URL to register with (e.g. http://localhost:8080)")
	host := flag.String("host", "", "placement host name to register as (required with -register)")
	advertise := flag.String("advertise", "", "dist address to advertise to the server (default: the listen address)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for active job sessions on SIGINT/SIGTERM")
	flag.Parse()
	if *register != "" && *host == "" {
		fmt.Fprintln(os.Stderr, "dcworker: -register requires -host")
		os.Exit(2)
	}

	if *wirebuf > 0 {
		dist.SetWireBufferSize(*wirebuf)
	}
	if *dialTimeout > 0 {
		dist.SetDefaultDialTimeout(*dialTimeout)
	}
	w, err := dist.NewWorker(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcworker:", err)
		os.Exit(1)
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcworker:", err)
			os.Exit(2)
		}
		w.SetFaults(plan.Injector())
		fmt.Printf("dcworker fault plan active: %s\n", plan)
	}

	var (
		o          *obs.Observer
		traceF     *os.File
		healthAddr string
	)
	if *debugAddr != "" || *trace != "" {
		reg := obs.NewRegistry()
		ring := obs.NewRingSink(4096)
		sinks := []obs.Sink{ring}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcworker:", err)
				os.Exit(1)
			}
			traceF = f
			sinks = append(sinks, obs.NewJSONLSink(f))
		}
		o = obs.New(obs.Tee(sinks...), reg)
		o.SetClock(obs.NewWallClock())
		w.SetObserver(o)
		if *debugAddr != "" {
			dbg, err := obs.ServeDebug(*debugAddr, reg, ring)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcworker:", err)
				os.Exit(1)
			}
			healthAddr = dbg.Addr
			fmt.Printf("dcworker debug endpoint on http://%s/\n", dbg.Addr)
		}
	}

	fmt.Printf("dcworker listening on %s\n", w.Addr())
	if *register != "" {
		addr := *advertise
		if addr == "" {
			addr = w.Addr()
		}
		go registerLoop(*register, *host, addr, healthAddr)
	}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		got := <-ch
		fmt.Printf("dcworker: %s — draining (up to %s for active sessions)\n", got, *drainTimeout)
		done := make(chan bool, 1)
		go func() { done <- w.Drain(*drainTimeout) }()
		select {
		case ok := <-done:
			if !ok {
				fmt.Fprintln(os.Stderr, "dcworker: drain timed out with sessions active")
			}
		case <-ch:
			fmt.Fprintln(os.Stderr, "dcworker: second signal — aborting")
		}
		w.Close()
	}()
	w.Serve()
	if o != nil {
		o.Flush()
	}
	if traceF != nil {
		traceF.Close()
	}
}

// registerLoop announces the worker to a dcjobd server and renews the
// registration periodically, so a server restarted from its journal
// re-learns the mesh without operator help.
func registerLoop(server, host, addr, health string) {
	body, err := json.Marshal(map[string]string{"host": host, "addr": addr, "health": health})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcworker: register:", err)
		return
	}
	client := &http.Client{Timeout: 5 * time.Second}
	registered := false
	for {
		resp, err := client.Post(server+"/workers", "application/json", bytes.NewReader(body))
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "dcworker: register:", err)
		case resp.StatusCode != http.StatusNoContent:
			fmt.Fprintf(os.Stderr, "dcworker: register: server said %s\n", resp.Status)
		case !registered:
			registered = true
			fmt.Printf("dcworker registered as %q with %s\n", host, server)
		}
		if resp != nil {
			resp.Body.Close()
		}
		time.Sleep(5 * time.Second)
	}
}
