// Benchmarks regenerating each of the paper's tables and figures at quick
// scale (one Benchmark per artifact; run `cmd/dcbench -scale full` for the
// paper-scale numbers), plus ablation benches for the design decisions in
// DESIGN.md §6. Simulated experiments report their virtual-time result as
// the custom metric "vsec" so benchmark output doubles as a compact shape
// check.
package datacutter

import (
	"fmt"
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/experiments"
	"datacutter/internal/hilbert"
	"datacutter/internal/isoviz"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
	"datacutter/internal/volume"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 || res.Tables[0].Rows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1Pipeline regenerates Table 1 (buffer counts and volumes).
func BenchmarkTable1Pipeline(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Filters regenerates Table 2 (per-filter times).
func BenchmarkTable2Filters(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig4 regenerates Figure 4 (ADR vs DataCutter, homogeneous).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (background load, normalized).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable3 regenerates Table 3 (per-node-class buffer counts).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4Configs regenerates Table 4 (configurations x policies).
func BenchmarkTable4Configs(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5Policies regenerates Table 5 (8-way compute node).
func BenchmarkTable5Policies(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig7Skew regenerates Figure 7 (skewed distributions).
func BenchmarkFig7Skew(b *testing.B) { benchExperiment(b, "fig7") }

// ---- Ablation benches (DESIGN.md §6) ----

// BenchmarkPolicyDecision measures the per-buffer decision cost of each
// writer policy (ablation 1: one policy implementation drives both
// engines, so Pick must be cheap).
func BenchmarkPolicyDecision(b *testing.B) {
	targets := make([]core.TargetInfo, 8)
	for i := range targets {
		targets[i] = core.TargetInfo{Host: fmt.Sprintf("h%d", i), Copies: 1 + i%3, Local: i == 2}
	}
	unacked := []int{3, 1, 4, 1, 5, 9, 2, 6}
	for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven()} {
		b.Run(pol.Name(), func(b *testing.B) {
			w := pol.NewWriter(targets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = w.Pick(unacked)
			}
		})
	}
}

// benchWorkload builds a small simulated workload for the ablations.
func benchWorkload(b *testing.B) *isoviz.Workload {
	b.Helper()
	ds, err := dataset.New(dataset.Meta{
		GX: 65, GY: 65, GZ: 65, BX: 4, BY: 4, BZ: 4,
		Timesteps: 1, Files: 16, Seed: 5, Plumes: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return isoviz.NewWorkload(ds, 0.6)
}

// varCostSource emits buffers whose processing costs follow a seeded
// heavy-tailed distribution (a few buffers are far more expensive, like a
// few chunks carrying most of an isosurface).
type varCostSource struct {
	core.BaseFilter
	n    int
	seed uint64
}

func (s *varCostSource) Process(ctx core.Ctx) error {
	x := s.seed
	for i := 0; i < s.n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		cost := 0.001 + float64(x%97)/97.0*0.002
		if x%11 == 0 {
			cost *= 20 // heavy tail
		}
		if err := ctx.Write("work", core.Buffer{Payload: cost, Size: 4 << 10}); err != nil {
			return err
		}
	}
	return nil
}

// varCostWorker charges each buffer's cost to its host CPU.
type varCostWorker struct{ core.BaseFilter }

func (w *varCostWorker) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("work")
		if !ok {
			return nil
		}
		ctx.Compute(b.Payload.(float64))
	}
}

// BenchmarkCopySetVsPerCopy compares the paper's copy-set design (all
// copies of a filter on a host share one demand-balanced queue) against
// per-copy queues fed round-robin (ablation 2). Buffer costs are
// heavy-tailed, so the shared queue's demand balance finishes sooner while
// static round-robin strands expensive buffers behind one copy.
func BenchmarkCopySetVsPerCopy(b *testing.B) {
	run := func(b *testing.B, sharedQueue bool) float64 {
		k := sim.NewKernel()
		cl := cluster.New(k)
		cl.AddHost(cluster.HostSpec{Name: "src", Cores: 1, Speed: 1, NICBandwidth: 100e6})
		g := core.NewGraph()
		g.AddFilter("S", func() core.Filter { return &varCostSource{n: 2000, seed: 12345} })
		g.AddFilter("W", func() core.Filter { return &varCostWorker{} })
		g.Connect("S", "W", "work")
		// Same aggregate compute either way: one 4-core host (one copy set,
		// one shared demand queue) vs four 1-core hosts (four copy sets fed
		// round robin).
		pl := core.NewPlacement().Place("S", "src", 1)
		if sharedQueue {
			cl.AddHost(cluster.HostSpec{Name: "w0", Cores: 4, Speed: 1, NICBandwidth: 100e6})
			pl.Place("W", "w0", 4)
		} else {
			for i := 0; i < 4; i++ {
				h := fmt.Sprintf("w%d", i)
				cl.AddHost(cluster.HostSpec{Name: h, Cores: 1, Speed: 1, NICBandwidth: 100e6})
				pl.Place("W", h, 1)
			}
		}
		r, err := simrt.NewRunner(g, pl, cl, simrt.Options{Policy: core.RoundRobin(), QueueCap: 4})
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		return st.WallSeconds
	}
	b.Run("shared-copy-set-queue", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(b, true)
		}
		b.ReportMetric(v, "vsec")
	})
	b.Run("per-copy-queues-RR", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = run(b, false)
		}
		b.ReportMetric(v, "vsec")
	})
}

// ddNoLocal is the DD policy without the local tie-break (ablation 3).
type ddNoLocal struct{}

func (ddNoLocal) Name() string { return "DD-nolocal" }
func (ddNoLocal) NewWriter(targets []core.TargetInfo) core.Writer {
	stripped := make([]core.TargetInfo, len(targets))
	copy(stripped, targets)
	for i := range stripped {
		stripped[i].Local = false
	}
	return core.DemandDriven().NewWriter(stripped)
}

// BenchmarkDDTieBreak compares demand-driven scheduling with and without
// the colocated-copy tie preference on a cluster where network transfers
// are expensive. Raster here is cheap relative to extraction, so consumers
// keep up and ties are common: the tie-break keeps traffic local, the
// variant without it sprays buffers across the slow network.
func BenchmarkDDTieBreak(b *testing.B) {
	w := benchWorkload(b)
	view := isoviz.DefaultView(0.6)
	costs := isoviz.DefaultCosts()
	costs.TriRasterSeconds = 4e-6
	costs.PixelSeconds = 0.5e-6
	run := func(b *testing.B, pol core.Policy) (float64, int64) {
		k := sim.NewKernel()
		cl := cluster.New(k)
		var hosts []string
		for i := 0; i < 4; i++ {
			h := fmt.Sprintf("n%d", i)
			cl.AddHost(cluster.HostSpec{Name: h, Cores: 1, Speed: 1,
				NICBandwidth: 8e6, NICOverhead: 100e-6,
				Disks: []cluster.DiskSpec{{SeekSeconds: 1e-3, Bandwidth: 50e6}}})
			hosts = append(hosts, h)
		}
		dist := dataset.DistributeEven(w.DS.Files, hosts, 1)
		pl := core.NewPlacement()
		for _, h := range hosts {
			pl.Place("RE", h, 1).Place("Ra", h, 1)
		}
		pl.Place("M", hosts[0], 1)
		spec := isoviz.ModelSpec{
			Config: isoviz.ReadExtract, Alg: isoviz.ActivePixel, W: w, Dist: dist,
			Assign: isoviz.AssignByDistribution(w.DS, dist, pl, "RE"),
			Costs:  costs,
		}
		r, err := simrt.NewRunner(spec.Build(), pl, cl, simrt.Options{
			Policy: pol, UOWs: []any{view}, BufferBytes: 8 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		return st.WallSeconds, cl.RemoteBytes
	}
	b.Run("DD-local-tiebreak", func(b *testing.B) {
		var v float64
		var bytes int64
		for i := 0; i < b.N; i++ {
			v, bytes = run(b, core.DemandDriven())
		}
		b.ReportMetric(v, "vsec")
		b.ReportMetric(float64(bytes)/1e6, "remoteMB")
	})
	b.Run("DD-no-local", func(b *testing.B) {
		var v float64
		var bytes int64
		for i := 0; i < b.N; i++ {
			v, bytes = run(b, ddNoLocal{})
		}
		b.ReportMetric(v, "vsec")
		b.ReportMetric(float64(bytes)/1e6, "remoteMB")
	})
}

// BenchmarkDecluster compares Hilbert-curve declustering against naive
// modulo declustering (ablation 5): the metric is the worst single-file
// share of a small range query's chunks — lower is better spread.
func BenchmarkDecluster(b *testing.B) {
	meta := dataset.Meta{GX: 129, GY: 129, GZ: 129, BX: 16, BY: 16, BZ: 16,
		Timesteps: 1, Files: 16, Seed: 1, Plumes: 3}
	ds, err := dataset.New(meta)
	if err != nil {
		b.Fatal(err)
	}
	query := func(fileOf func(chunk int) int) float64 {
		// Octant range queries at several offsets; track the worst
		// per-file concentration.
		worst := 0.0
		for off := 0; off <= 64; off += 16 {
			chunks := ds.RangeQuery(off, off, off, off+48, off+48, off+48)
			perFile := make(map[int]int)
			for _, c := range chunks {
				perFile[fileOf(c)]++
			}
			for _, n := range perFile {
				if f := float64(n) / float64(len(chunks)); f > worst {
					worst = f
				}
			}
		}
		return worst
	}
	b.Run("hilbert", func(b *testing.B) {
		var w float64
		for i := 0; i < b.N; i++ {
			w = query(ds.FileOf)
		}
		b.ReportMetric(w, "worstFileShare")
	})
	b.Run("modulo", func(b *testing.B) {
		var w float64
		for i := 0; i < b.N; i++ {
			w = query(func(c int) int { return c % meta.Files })
		}
		b.ReportMetric(w, "worstFileShare")
	})
}

// volumeField builds the shared synthetic field for rendering benches.
func volumeField() volume.Field { return volume.NewPlumeField(99, 4) }

// BenchmarkHilbertIndex measures raw curve-index throughput.
func BenchmarkHilbertIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = hilbert.Index(uint32(i)&1023, uint32(i>>10)&1023, uint32(i>>20)&1023, 10)
	}
}

// BenchmarkHybridPartitioning compares the replicated z-buffer pipeline
// with the paper's proposed hybrid image-partitioning (§6, implemented in
// isoviz.PartitionedSpec): replication ships copies x full frame into the
// merge filter, partitioning ships each winning pixel once, so its merge
// traffic stays flat as parallelism grows.
func BenchmarkHybridPartitioning(b *testing.B) {
	src := isoviz.NewFieldSource(volumeField(), 49, 49, 49, 3, 3, 3)
	view := isoviz.View{Timestep: 0, Iso: 0.35, Width: 128, Height: 128, Camera: isoviz.DefaultView(0).Camera}
	const par = 12
	b.Run("replicated", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			spec := isoviz.PipelineSpec{Config: isoviz.ReadExtract, Alg: isoviz.ZBuffer, Source: src, Assign: isoviz.AssignByCopy(src.Chunks())}
			pl := core.NewPlacement().Place("RE", "h0", 2).Place("Ra", "h0", par).Place("M", "h0", 1)
			r, err := core.NewRunner(spec.Build(), pl, core.Options{UOWs: []any{view}})
			if err != nil {
				b.Fatal(err)
			}
			st, err := r.Run()
			if err != nil {
				b.Fatal(err)
			}
			bytes = st.Streams[isoviz.StreamPixels].Bytes
		}
		b.ReportMetric(float64(bytes)/1e3, "mergeKB")
	})
	b.Run("partitioned", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			spec := isoviz.PartitionedSpec{Bands: par, Source: src, Assign: isoviz.AssignByCopy(src.Chunks())}
			pl := core.NewPlacement().Place("RE", "h0", 2).Place("M", "h0", 1)
			for j := 0; j < par; j++ {
				pl.Place(isoviz.BandFilterName(j), "h0", 1)
			}
			r, err := core.NewRunner(spec.Build(), pl, core.Options{UOWs: []any{view}})
			if err != nil {
				b.Fatal(err)
			}
			st, err := r.Run()
			if err != nil {
				b.Fatal(err)
			}
			bytes = 0
			for j := 0; j < par; j++ {
				bytes += st.Streams[isoviz.PixBandStream(j)].Bytes
			}
		}
		b.ReportMetric(float64(bytes)/1e3, "mergeKB")
	})
}
